package omp

import (
	"testing"

	"nowa/internal/api"
)

func fib(c api.Ctx, n int) int {
	if n < 2 {
		return n
	}
	var a int
	s := c.Scope()
	s.Spawn(func(c api.Ctx) { a = fib(c, n-1) })
	b := fib(c, n-2)
	s.Sync()
	return a + b
}

func fibSerial(n int) int {
	if n < 2 {
		return n
	}
	return fibSerial(n-1) + fibSerial(n-2)
}

func runtimes(workers int) []api.Runtime {
	return []api.Runtime{
		NewGOMP(workers),
		NewOMP(workers, Untied),
		NewOMP(workers, Tied),
	}
}

func TestFibAllRuntimes(t *testing.T) {
	want := fibSerial(14)
	for _, workers := range []int{1, 2, 4} {
		for _, rt := range runtimes(workers) {
			rt := rt
			t.Run(rt.Name(), func(t *testing.T) {
				var got int
				rt.Run(func(c api.Ctx) { got = fib(c, 14) })
				if got != want {
					t.Fatalf("w=%d: fib(14) = %d, want %d", workers, got, want)
				}
			})
		}
	}
}

func TestNames(t *testing.T) {
	if NewGOMP(1).Name() != "libgomp" {
		t.Error("GOMP name")
	}
	if NewOMP(1, Untied).Name() != "libomp-untied" {
		t.Error("OMP untied name")
	}
	if NewOMP(1, Tied).Name() != "libomp-tied" {
		t.Error("OMP tied name")
	}
	if Untied.String() != "untied" || Tied.String() != "tied" {
		t.Error("mode strings")
	}
}

func TestWideSpawn(t *testing.T) {
	for _, rt := range runtimes(4) {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			const n = 200
			results := make([]int, n)
			rt.Run(func(c api.Ctx) {
				s := c.Scope()
				for i := 0; i < n; i++ {
					i := i
					s.Spawn(func(c api.Ctx) { results[i] = i * 2 })
				}
				s.Sync()
			})
			for i, r := range results {
				if r != i*2 {
					t.Fatalf("results[%d] = %d", i, r)
				}
			}
		})
	}
}

func TestNestedTaskwaits(t *testing.T) {
	// Nested scopes with interleaved syncs stress the tied-mode
	// restriction (waiting thread may only run its own tasks).
	for _, rt := range runtimes(4) {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			var total int
			rt.Run(func(c api.Ctx) {
				total = nested(c, 4)
			})
			if want := nestedSerial(4); total != want {
				t.Fatalf("nested = %d, want %d", total, want)
			}
		})
	}
}

func nested(c api.Ctx, depth int) int {
	if depth == 0 {
		return 1
	}
	parts := make([]int, 3)
	s := c.Scope()
	for i := range parts {
		i := i
		s.Spawn(func(c api.Ctx) { parts[i] = nested(c, depth-1) })
	}
	s.Sync()
	sum := 1
	for _, p := range parts {
		sum += p
	}
	return sum
}

func nestedSerial(depth int) int {
	if depth == 0 {
		return 1
	}
	sum := 1
	for i := 0; i < 3; i++ {
		sum += nestedSerial(depth - 1)
	}
	return sum
}

func TestRuntimeReuse(t *testing.T) {
	for _, rt := range runtimes(2) {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			for i := 0; i < 3; i++ {
				var got int
				rt.Run(func(c api.Ctx) { got = fib(c, 10) })
				if want := fibSerial(10); got != want {
					t.Fatalf("run %d: %d != %d", i, got, want)
				}
			}
		})
	}
}

func TestGOMPCentralQueueContention(t *testing.T) {
	// Behavioural fingerprint: every libgomp scheduling action goes
	// through the central queue, so "steals" (queue takes) must equal
	// spawns — there is no local fast path at all.
	rt := NewGOMP(4)
	rt.Run(func(c api.Ctx) { _ = fib(c, 12) })
	cnt := rt.Counters()
	if cnt.Spawns == 0 {
		t.Fatal("no spawns")
	}
	if cnt.Steals != cnt.Spawns {
		t.Errorf("central-queue takes (%d) != spawns (%d)", cnt.Steals, cnt.Spawns)
	}
	if cnt.LocalResumes != 0 {
		t.Errorf("libgomp has no local fast path, got %d local pops", cnt.LocalResumes)
	}
}

func TestOMPTiedNeverStealsAtTaskwait(t *testing.T) {
	// With one worker, a tied taskwait may only pop its own deque; steal
	// attempts would self-target and be visible in FailedSteals.
	rt := NewOMP(1, Tied)
	rt.Run(func(c api.Ctx) { _ = fib(c, 12) })
	cnt := rt.Counters()
	if cnt.Steals != 0 {
		t.Errorf("tied single-worker recorded %d steals", cnt.Steals)
	}
	if cnt.LocalResumes != cnt.Spawns {
		t.Errorf("local pops (%d) != spawns (%d)", cnt.LocalResumes, cnt.Spawns)
	}
}

func TestConcurrentRunPanics(t *testing.T) {
	rt := NewOMP(2, Untied)
	started := make(chan struct{})
	release := make(chan struct{})
	firstDone := make(chan struct{})
	go func() {
		rt.Run(func(c api.Ctx) {
			close(started)
			<-release
		})
		close(firstDone)
	}()
	<-started
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second concurrent Run did not panic")
			}
			close(release)
		}()
		rt.Run(func(c api.Ctx) {})
	}()
	<-firstDone
}
