// Package omp provides the OpenMP-task comparator runtimes of §V-E,
// re-created from their documented scheduling behaviour:
//
//   - LibGOMP (GCC's runtime): a single central task queue protected by
//     one mutex. Every task creation and every scheduling decision
//     contends on that hotspot, which is why the paper measures speedups
//     at or below one for fine-grained task parallelism (Figure 10).
//   - LibOMP (Clang's runtime): per-worker task deques with child
//     stealing — "potentially due to its internal work-stealing
//     scheduling" (§V-E) — with Tied and Untied task modes. A thread
//     waiting at a taskwait may always execute tasks from its own deque;
//     only with untied tasks does it also steal, mirroring OpenMP's task
//     scheduling constraints on tied tasks.
//
// Both are child-stealing designs: the omp task pragma makes the child
// stealable and the parent continues; omp taskwait maps to Sync.
package omp

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"nowa/internal/api"
	"nowa/internal/deque"
	"nowa/internal/trace"
)

// Mode selects the OpenMP task mode of the LibOMP-like runtime.
type Mode int

const (
	// Untied tasks may be scheduled on any thread at a scheduling point.
	Untied Mode = iota
	// Tied tasks restrict a waiting thread to tasks it created itself.
	Tied
)

// String returns the clause name.
func (m Mode) String() string {
	if m == Tied {
		return "tied"
	}
	return "untied"
}

type task struct {
	fn func(api.Ctx)
	sc *scope
}

// scope is one taskgroup: a counter of outstanding children.
type scope struct {
	c       *ctx
	pending atomic.Int64
}

type ctx struct {
	rt     runtimeIface
	worker int
}

func (c *ctx) Workers() int          { return c.rt.workers() }
func (c *ctx) Scope() api.Scope      { return &scope{c: c} }
func (c *ctx) Done() <-chan struct{} { return c.rt.cancelState().Done() }
func (c *ctx) Err() error            { return c.rt.cancelState().Err() }

func (s *scope) Spawn(fn func(api.Ctx)) {
	rt := s.c.rt
	if rt.cancelState().Cancelled() {
		// Cancelled run: degrade to inline execution with the usual
		// strand-panic containment; no task is allocated or queued.
		rt.recorder().Worker(s.c.worker).InlineSpawns.Add(1)
		func() {
			defer rt.panicBox().contain()
			fn(s.c)
		}()
		return
	}
	s.pending.Add(1)
	rt.spawn(&task{fn: fn, sc: s}, s.c.worker)
}

func (s *scope) Sync() { s.c.rt.taskwait(s) }

// runtimeIface is the shared strand-coordination surface of the two
// OpenMP-like runtimes.
type runtimeIface interface {
	workers() int
	spawn(t *task, worker int)
	taskwait(s *scope)
	panicBox() *panicBox
	cancelState() *api.CancelState
	recorder() *trace.Recorder
}

// panicBox collects the first strand panic of a Run for re-raising;
// later panics are tallied on it via StrandPanic.Suppress.
type panicBox struct {
	mu sync.Mutex
	p  *api.StrandPanic
}

// contain records a recovered panic; defer it around strand execution.
func (b *panicBox) contain() {
	if r := recover(); r != nil {
		b.mu.Lock()
		if b.p == nil {
			b.p = &api.StrandPanic{Value: r, Stack: debug.Stack()}
		} else {
			b.p.Suppress(r)
		}
		b.mu.Unlock()
	}
}

// rethrow re-raises and clears the recorded panic, if any.
func (b *panicBox) rethrow() {
	b.mu.Lock()
	p := b.p
	b.p = nil
	b.mu.Unlock()
	if p != nil {
		panic(p)
	}
}

func execute(rt runtimeIface, t *task, ctxs []ctx, w int) {
	defer t.sc.pending.Add(-1)
	defer rt.panicBox().contain()
	t.fn(&ctxs[w])
}

func idleBackoff(fails int) {
	switch {
	case fails < 64:
		runtime.Gosched()
	case fails < 256:
		time.Sleep(time.Microsecond)
	default:
		time.Sleep(50 * time.Microsecond)
	}
}

// ---------------------------------------------------------------------------
// LibGOMP-like: one central mutex-protected queue.

// GOMP is the libgomp-like runtime.
type GOMP struct {
	nworkers int
	mu       sync.Mutex
	queue    []*task
	ctxs     []ctx
	rec      *trace.Recorder
	done     atomic.Bool
	running  atomic.Bool
	cancel   api.CancelState
	panics   panicBox
}

// NewGOMP creates a libgomp-like runtime with the given worker count.
func NewGOMP(workers int) *GOMP {
	if workers <= 0 {
		workers = 1
	}
	rt := &GOMP{nworkers: workers, rec: trace.NewRecorder(workers)}
	rt.ctxs = make([]ctx, workers)
	for w := range rt.ctxs {
		rt.ctxs[w] = ctx{rt: rt, worker: w}
	}
	return rt
}

// Name implements api.Runtime.
func (rt *GOMP) Name() string { return "libgomp" }

// Workers implements api.Runtime.
func (rt *GOMP) Workers() int { return rt.nworkers }

// Counters aggregates event counters.
func (rt *GOMP) Counters() trace.Counters { return rt.rec.Aggregate() }

func (rt *GOMP) workers() int                  { return rt.nworkers }
func (rt *GOMP) panicBox() *panicBox           { return &rt.panics }
func (rt *GOMP) cancelState() *api.CancelState { return &rt.cancel }
func (rt *GOMP) recorder() *trace.Recorder     { return rt.rec }

func (rt *GOMP) spawn(t *task, worker int) {
	rt.rec.Worker(worker).Spawns.Add(1)
	rt.mu.Lock()
	rt.queue = append(rt.queue, t)
	rt.mu.Unlock()
}

func (rt *GOMP) take(worker int) (*task, bool) {
	rt.mu.Lock()
	n := len(rt.queue)
	if n == 0 {
		rt.mu.Unlock()
		rt.rec.Worker(worker).FailedSteals.Add(1)
		return nil, false
	}
	t := rt.queue[n-1]
	rt.queue[n-1] = nil
	rt.queue = rt.queue[:n-1]
	rt.mu.Unlock()
	rt.rec.Worker(worker).Steals.Add(1)
	return t, true
}

func (rt *GOMP) taskwait(s *scope) {
	w := s.c.worker
	rt.rec.Worker(w).ExplicitSyncs.Add(1)
	fails := 0
	for s.pending.Load() != 0 {
		if t, ok := rt.take(w); ok {
			execute(rt, t, rt.ctxs, w)
			fails = 0
			continue
		}
		fails++
		idleBackoff(fails)
	}
}

// Run implements api.Runtime.
func (rt *GOMP) Run(root func(api.Ctx)) {
	_ = rt.runInternal(nil, root)
}

// RunCtx implements api.Runtime; see the interface contract for the
// cooperative drain semantics.
func (rt *GOMP) RunCtx(ctx context.Context, root func(api.Ctx)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return rt.runInternal(ctx, root)
}

func (rt *GOMP) runInternal(ctx context.Context, root func(api.Ctx)) error {
	if !rt.running.CompareAndSwap(false, true) {
		panic("omp: concurrent Run on the same GOMP runtime")
	}
	defer rt.running.Store(false)
	rt.done.Store(false)
	stop := rt.cancel.Begin(ctx, nil)
	defer stop()
	var wg sync.WaitGroup
	for w := 1; w < rt.nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fails := 0
			for !rt.done.Load() {
				if t, ok := rt.take(w); ok {
					execute(rt, t, rt.ctxs, w)
					fails = 0
					continue
				}
				fails++
				idleBackoff(fails)
			}
		}(w)
	}
	func() {
		defer rt.panics.contain()
		root(&rt.ctxs[0])
	}()
	rt.done.Store(true)
	wg.Wait()
	rt.panics.rethrow()
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// ---------------------------------------------------------------------------
// LibOMP-like: per-worker locked deques, child stealing, tied/untied.

// OMP is the libomp-like runtime.
type OMP struct {
	nworkers int
	mode     Mode
	deques   []deque.Deque[task]
	ctxs     []ctx
	rngs     []uint64
	rec      *trace.Recorder
	done     atomic.Bool
	running  atomic.Bool
	cancel   api.CancelState
	panics   panicBox
}

// NewOMP creates a libomp-like runtime with the given worker count and
// task mode.
func NewOMP(workers int, mode Mode) *OMP {
	if workers <= 0 {
		workers = 1
	}
	rt := &OMP{
		nworkers: workers,
		mode:     mode,
		deques:   make([]deque.Deque[task], workers),
		ctxs:     make([]ctx, workers),
		rngs:     make([]uint64, workers),
		rec:      trace.NewRecorder(workers),
	}
	for w := 0; w < workers; w++ {
		// libomp guards its per-thread deques with locks.
		rt.deques[w] = deque.New[task](deque.Locked, 256)
		rt.ctxs[w] = ctx{rt: rt, worker: w}
		rt.rngs[w] = uint64(w)*0x9e3779b97f4a7c15 + 7
	}
	return rt
}

// Name implements api.Runtime.
func (rt *OMP) Name() string { return "libomp-" + rt.mode.String() }

// Workers implements api.Runtime.
func (rt *OMP) Workers() int { return rt.nworkers }

// Counters aggregates event counters.
func (rt *OMP) Counters() trace.Counters { return rt.rec.Aggregate() }

// Mode reports the task mode.
func (rt *OMP) Mode() Mode { return rt.mode }

func (rt *OMP) workers() int                  { return rt.nworkers }
func (rt *OMP) panicBox() *panicBox           { return &rt.panics }
func (rt *OMP) cancelState() *api.CancelState { return &rt.cancel }
func (rt *OMP) recorder() *trace.Recorder     { return rt.rec }

func (rt *OMP) spawn(t *task, worker int) {
	rt.rec.Worker(worker).Spawns.Add(1)
	rt.deques[worker].PushBottom(t)
}

func (rt *OMP) nextRand(w int) uint64 {
	x := rt.rngs[w]
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	rt.rngs[w] = x
	return x
}

func (rt *OMP) stealOnce(w int) (*task, bool) {
	victim := int(rt.nextRand(w) % uint64(rt.nworkers))
	t, ok := rt.deques[victim].PopTop()
	if ok {
		rt.rec.Worker(w).Steals.Add(1)
	} else {
		rt.rec.Worker(w).FailedSteals.Add(1)
	}
	return t, ok
}

// taskwait: a waiting thread always may run its own deque's tasks; only
// untied mode lets it steal while waiting (OpenMP task scheduling
// constraint on tied tasks).
func (rt *OMP) taskwait(s *scope) {
	w := s.c.worker
	rec := rt.rec.Worker(w)
	rec.ExplicitSyncs.Add(1)
	fails := 0
	for s.pending.Load() != 0 {
		if t, ok := rt.deques[w].PopBottom(); ok {
			rec.LocalResumes.Add(1)
			execute(rt, t, rt.ctxs, w)
			fails = 0
			continue
		}
		if rt.mode == Untied {
			if t, ok := rt.stealOnce(w); ok {
				execute(rt, t, rt.ctxs, w)
				fails = 0
				continue
			}
		}
		fails++
		idleBackoff(fails)
	}
}

// Run implements api.Runtime.
func (rt *OMP) Run(root func(api.Ctx)) {
	_ = rt.runInternal(nil, root)
}

// RunCtx implements api.Runtime; see the interface contract for the
// cooperative drain semantics.
func (rt *OMP) RunCtx(ctx context.Context, root func(api.Ctx)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return rt.runInternal(ctx, root)
}

func (rt *OMP) runInternal(ctx context.Context, root func(api.Ctx)) error {
	if !rt.running.CompareAndSwap(false, true) {
		panic("omp: concurrent Run on the same OMP runtime")
	}
	defer rt.running.Store(false)
	rt.done.Store(false)
	stop := rt.cancel.Begin(ctx, nil)
	defer stop()
	var wg sync.WaitGroup
	for w := 1; w < rt.nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fails := 0
			for !rt.done.Load() {
				// Idle workers steal in both modes; tied-ness only
				// restricts threads waiting inside a taskwait.
				if t, ok := rt.deques[w].PopBottom(); ok {
					rt.rec.Worker(w).LocalResumes.Add(1)
					execute(rt, t, rt.ctxs, w)
					fails = 0
					continue
				}
				if t, ok := rt.stealOnce(w); ok {
					execute(rt, t, rt.ctxs, w)
					fails = 0
					continue
				}
				fails++
				idleBackoff(fails)
			}
		}(w)
	}
	func() {
		defer rt.panics.contain()
		root(&rt.ctxs[0])
	}()
	rt.done.Store(true)
	wg.Wait()
	rt.panics.rethrow()
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

var (
	_ api.Runtime = (*GOMP)(nil)
	_ api.Runtime = (*OMP)(nil)
)
