package nowa

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nowa/internal/sched"
)

// testFib is the usual fork/join fibonacci, used to prove a runtime is
// still healthy after a cancelled run.
func testFib(c Ctx, n int) int {
	if n < 2 {
		return n
	}
	var a int
	s := c.Scope()
	s.Spawn(func(c Ctx) { a = testFib(c, n-1) })
	b := testFib(c, n-2)
	s.Sync()
	return a + b
}

// cancelRuntimes returns every variant plus the serial elision, each
// paired with a cleanup.
func cancelRuntimes(t *testing.T) map[string]Runtime {
	t.Helper()
	rts := map[string]Runtime{"serial": Serial()}
	for _, v := range Variants() {
		rts[v.String()] = New(v, 4)
	}
	return rts
}

// TestCancelAlreadyCancelledCtx: RunCtx with an already-cancelled context
// must not run the root at all, must return context.Canceled, and must
// leave the runtime reusable.
func TestCancelAlreadyCancelledCtx(t *testing.T) {
	for name, rt := range cancelRuntimes(t) {
		t.Run(name, func(t *testing.T) {
			defer Close(rt)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			ran := false
			err := rt.RunCtx(ctx, func(c Ctx) { ran = true })
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if ran {
				t.Fatal("root ran under an already-cancelled context")
			}
			// The runtime must still work.
			var got int
			rt.Run(func(c Ctx) { got = testFib(c, 12) })
			if got != 144 {
				t.Fatalf("post-cancel Run: fib(12) = %d, want 144", got)
			}
		})
	}
}

// TestCancelMidFlightDrains: cancelling mid-run must drain every started
// strand (fully-strict), return context.Canceled, degrade later Spawns to
// inline execution, and leave the runtime reusable with zero tokens lost.
func TestCancelMidFlightDrains(t *testing.T) {
	for name, rt := range cancelRuntimes(t) {
		t.Run(name, func(t *testing.T) {
			defer Close(rt)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var finished atomic.Int64
			err := rt.RunCtx(ctx, func(c Ctx) {
				s := c.Scope()
				for i := 0; i < 100; i++ {
					if i == 30 {
						cancel()
					}
					s.Spawn(func(Ctx) { finished.Add(1) })
				}
				s.Sync()
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Fully-strict drain: every spawned strand completed, whether
			// it ran through the scheduler or inline after cancellation.
			if got := finished.Load(); got != 100 {
				t.Fatalf("finished = %d, want 100 (cancel must drain, not drop)", got)
			}
			if srt, ok := rt.(*sched.Runtime); ok {
				if left := srt.DebugTokensLeft(); left != 0 {
					t.Fatalf("tokensLeft = %d after cancelled run, want 0", left)
				}
				// Spawns after the cancel at i==30 (Cancelled latches
				// immediately) run inline: 100-30 = 70. Counters are
				// cumulative, so read them before the reuse run below.
				if got := srt.Counters().InlineSpawns; got != 70 {
					t.Fatalf("InlineSpawns = %d, want 70", got)
				}
			}
			var got int
			rt.Run(func(c Ctx) { got = testFib(c, 12) })
			if got != 144 {
				t.Fatalf("post-cancel Run: fib(12) = %d, want 144", got)
			}
		})
	}
}

// TestCancelDeadline: RunTimeout must surface context.DeadlineExceeded
// once the root observes the deadline, and the runtime stays reusable.
func TestCancelDeadline(t *testing.T) {
	for name, rt := range cancelRuntimes(t) {
		t.Run(name, func(t *testing.T) {
			defer Close(rt)
			err := RunTimeout(rt, 20*time.Millisecond, func(c Ctx) {
				for c.Err() == nil {
					time.Sleep(time.Millisecond)
				}
			})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			var got int
			rt.Run(func(c Ctx) { got = testFib(c, 12) })
			if got != 144 {
				t.Fatalf("post-timeout Run: fib(12) = %d, want 144", got)
			}
		})
	}
}

// TestCancelForEarlyExit: the For combinator must stop descending into
// unstarted subranges once the run is cancelled.
func TestCancelForEarlyExit(t *testing.T) {
	rt := New(VariantNowa, 4)
	defer Close(rt)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visited atomic.Int64
	err := rt.RunCtx(ctx, func(c Ctx) {
		For(c, 0, 100000, 10, func(c Ctx, i int) {
			if i == 0 {
				cancel()
			}
			visited.Add(1)
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := visited.Load(); got >= 50000 {
		t.Fatalf("visited %d of 100000 iterations after immediate cancel; early exit not effective", got)
	}
}

// TestCancelDoneChannel: Ctx.Done is nil under a plain Run and closes on
// cancellation under RunCtx.
func TestCancelDoneChannel(t *testing.T) {
	rt := New(VariantNowa, 2)
	defer Close(rt)
	rt.Run(func(c Ctx) {
		if c.Done() != nil {
			t.Error("Done() != nil under plain Run")
		}
		if c.Err() != nil {
			t.Errorf("Err() = %v under plain Run", c.Err())
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := rt.RunCtx(ctx, func(c Ctx) {
		if c.Done() == nil {
			t.Error("Done() == nil under RunCtx")
		}
		select {
		case <-c.Done():
			t.Error("Done() closed before cancellation")
		default:
		}
		cancel()
		select {
		case <-c.Done():
		case <-time.After(5 * time.Second):
			t.Error("Done() did not close after cancellation")
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
