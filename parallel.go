package nowa

// Structured-parallelism combinators built on the spawn/sync primitives,
// the convenience layer a downstream user reaches for first.
//
// Under a cancelled RunCtx every combinator exits early: subranges not
// yet started are skipped (For/Map) or fold to the identity (Reduce), so
// a cancelled run winds down in O(started work) rather than finishing
// the whole iteration space inline.

// Invoke runs the given functions as parallel siblings and returns when
// all have finished (a k-ary fork/join). Under a cancelled run no
// function is started.
func Invoke(c Ctx, fns ...func(Ctx)) {
	if c.Err() != nil {
		return
	}
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0](c)
		return
	}
	s := c.Scope()
	for _, fn := range fns[1:] {
		s.Spawn(fn)
	}
	fns[0](c)
	s.Sync()
}

// For executes body(i) for every i in [lo, hi) with divide-and-conquer
// parallelism; ranges of at most grain iterations run serially. A grain
// of 0 derives one from the range and worker count.
func For(c Ctx, lo, hi, grain int, body func(c Ctx, i int)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = (hi - lo) / (8 * c.Workers())
		if grain < 1 {
			grain = 1
		}
	}
	forRange(c, lo, hi, grain, body)
}

func forRange(c Ctx, lo, hi, grain int, body func(c Ctx, i int)) {
	if c.Err() != nil {
		return
	}
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		s := c.Scope()
		l, m := lo, mid
		s.Spawn(func(c Ctx) { forRange(c, l, m, grain, body) })
		lo = mid
		forRange(c, lo, hi, grain, body)
		s.Sync()
		return
	}
	for i := lo; i < hi; i++ {
		body(c, i)
	}
}

// Reduce maps every index of [lo, hi) through mapf and folds the results
// with combine (which must be associative); identity is the fold seed.
// Ranges of at most grain iterations are folded serially.
func Reduce[T any](c Ctx, lo, hi, grain int, identity T, mapf func(c Ctx, i int) T, combine func(a, b T) T) T {
	if hi <= lo {
		return identity
	}
	if grain <= 0 {
		grain = (hi - lo) / (8 * c.Workers())
		if grain < 1 {
			grain = 1
		}
	}
	return reduceRange(c, lo, hi, grain, identity, mapf, combine)
}

func reduceRange[T any](c Ctx, lo, hi, grain int, identity T, mapf func(c Ctx, i int) T, combine func(a, b T) T) T {
	if c.Err() != nil {
		return identity
	}
	if hi-lo <= grain {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, mapf(c, i))
		}
		return acc
	}
	mid := lo + (hi-lo)/2
	var left T
	s := c.Scope()
	s.Spawn(func(c Ctx) { left = reduceRange(c, lo, mid, grain, identity, mapf, combine) })
	right := reduceRange(c, mid, hi, grain, identity, mapf, combine)
	s.Sync()
	return combine(left, right)
}

// Map applies f in parallel, writing f(in[i]) to out[i]. in and out must
// have the same length.
func Map[A, B any](c Ctx, in []A, out []B, grain int, f func(A) B) {
	if len(in) != len(out) {
		panic("nowa.Map: input and output lengths differ")
	}
	For(c, 0, len(in), grain, func(_ Ctx, i int) {
		out[i] = f(in[i])
	})
}
