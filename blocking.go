package nowa

// Blocking without leaking (DESIGN.md §16). The primitives in future.go,
// channel.go and barrier.go let a strand wait on something outside the
// fork/join tree — a value another strand will produce, a buffer slot, a
// rendezvous — without holding its worker token hostage and without any
// way to leak the wait: a blocked strand hands its token to a thief
// vessel (sched.Proc.PrepareWait/CommitWait), and a cancelled one aborts
// its waiter cell through the cqs arbitration, restores a token through
// the wake queue, and returns its context's error. Exactly one of
// resume/abort wins each cell, so no vessel, stack or wakeup is ever
// lost — the abort-storm tests assert the conservation invariant
// BlockedWaits == ResumedWaits + AbortedWaits at quiescence.

import (
	"context"
	"errors"

	"nowa/internal/sched"
)

// ErrClosed is returned by Channel operations on a closed channel: Send
// fails fast, Recv reports it once the buffered items are drained.
var ErrClosed = errors.New("nowa: channel closed")

// ErrPoisoned marks a Future whose producer panicked instead of
// resolving: every Await unblocks with an error wrapping ErrPoisoned
// (and the panic cause) rather than hanging forever.
var ErrPoisoned = errors.New("nowa: future poisoned")

// procOf extracts the scheduler strand behind a Ctx. The blocking
// primitives need the vessel machinery — a parked strand hands its
// worker token away — so they run only on the continuation-stealing
// variants (the same set NewLimited accepts).
func procOf(c Ctx) *sched.Proc {
	p, ok := c.(*sched.Proc)
	if !ok {
		panic("nowa: blocking primitives require a continuation-stealing (vessel model) runtime")
	}
	return p
}

// wakeHandle adapts sched.Waiter.Wake to the cqs drain/release handle
// callbacks.
func wakeHandle(h any) { h.(*sched.Waiter).Wake() }

// parkWait commits a prepared wait and, when the strand runs under a
// cancellable context (RunCtx, or a submission's effective context in
// service mode), arms the abort: a context.AfterFunc racing abort
// against the wakeup. abort must be the primitive's cell-arbitration
// attempt — it returns true only when it won the waiter's cell, in which
// case the waiter will never be woken through it and the abort arm
// delivers the cancellation wakeup itself. Returns the context's error
// when the wait ended aborted, nil when it was resumed.
func parkWait(p *sched.Proc, bw *sched.Waiter, abort func() bool) error {
	ctx := p.WaitContext()
	if ctx == nil {
		// Plain Run: nothing can cancel the wait; only the primitive's
		// own resume (or close/poison sweep) ends it.
		p.CommitWait(bw)
		return nil
	}
	stop := context.AfterFunc(ctx, func() {
		if abort() {
			bw.WakeAborted()
		}
	})
	defer stop()
	if p.CommitWait(bw) {
		return ctx.Err()
	}
	return nil
}
