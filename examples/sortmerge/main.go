// Sortmerge: a parallel external-style sort pipeline on realistic data —
// sort per-shard with parallel quicksort, then parallel-merge the shards.
// Demonstrates nested fork/join: sorts spawn inside the per-shard spawn.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sort"
	"time"

	"nowa"
)

// pqsort is the parallel quicksort of the benchmark suite.
func pqsort(c nowa.Ctx, a []uint64) {
	const cutoff = 4096
	for len(a) > cutoff {
		p := partition(a)
		left := a[:p]
		a = a[p+1:]
		if len(left) > 0 {
			left := left
			s := c.Scope()
			s.Spawn(func(c nowa.Ctx) { pqsort(c, left) })
			pqsort(c, a)
			s.Sync()
			return
		}
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

func partition(a []uint64) int {
	n := len(a)
	mid := n / 2
	if a[0] > a[mid] {
		a[0], a[mid] = a[mid], a[0]
	}
	if a[0] > a[n-1] {
		a[0], a[n-1] = a[n-1], a[0]
	}
	if a[mid] > a[n-1] {
		a[mid], a[n-1] = a[n-1], a[mid]
	}
	pivot := a[mid]
	a[mid], a[n-2] = a[n-2], a[mid]
	i := 0
	for j := 0; j < n-2; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[n-2] = a[n-2], a[i]
	return i
}

// merge merges two sorted runs into dst.
func merge(dst, a, b []uint64) {
	i, j := 0, 0
	for k := range dst {
		switch {
		case i == len(a):
			dst[k] = b[j]
			j++
		case j == len(b) || a[i] <= b[j]:
			dst[k] = a[i]
			i++
		default:
			dst[k] = b[j]
			j++
		}
	}
}

func main() {
	total := flag.Int("n", 2_000_000, "total elements")
	shards := flag.Int("shards", 8, "number of shards")
	flag.Parse()

	rt := nowa.New(nowa.VariantNowa, runtime.NumCPU())
	defer nowa.Close(rt)

	// Deterministic "log record" keys: timestamps with jitter.
	data := make([]uint64, *total)
	x := uint64(88172645463325252)
	for i := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		data[i] = x
	}

	per := *total / *shards
	start := time.Now()
	rt.Run(func(c nowa.Ctx) {
		// Phase 1: sort every shard, each sort itself parallel.
		s := c.Scope()
		for i := 0; i < *shards; i++ {
			shard := data[i*per : min((i+1)*per, len(data))]
			s.Spawn(func(c nowa.Ctx) { pqsort(c, shard) })
		}
		s.Sync()

		// Phase 2: tree-merge the sorted shards in parallel.
		runs := make([][]uint64, 0, *shards)
		for i := 0; i < *shards; i++ {
			runs = append(runs, data[i*per:min((i+1)*per, len(data))])
		}
		for len(runs) > 1 {
			next := make([][]uint64, 0, (len(runs)+1)/2)
			m := c.Scope()
			for i := 0; i+1 < len(runs); i += 2 {
				a, b := runs[i], runs[i+1]
				out := make([]uint64, len(a)+len(b))
				next = append(next, out)
				m.Spawn(func(c nowa.Ctx) { merge(out, a, b) })
			}
			if len(runs)%2 == 1 {
				next = append(next, runs[len(runs)-1])
			}
			m.Sync()
			runs = next
		}
		data = runs[0]
	})
	elapsed := time.Since(start)

	for i := 1; i < len(data); i++ {
		if data[i-1] > data[i] {
			panic("sortmerge: output not sorted")
		}
	}
	fmt.Printf("sorted %d elements across %d shards in %v (verified)\n", len(data), *shards, elapsed)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
