// N-queens on every runtime variant: the Figure 1 workload, run end to
// end on the real runtimes with wall-clock timing. Irregular task trees
// like this one are where work-stealing schedulers earn their keep: the
// fan-out per node varies from 0 to n and cannot be partitioned statically.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"nowa"
)

func countQueens(c nowa.Ctx, n int, board []int8) int64 {
	row := len(board)
	if row == n {
		return 1
	}
	counts := make([]int64, n)
	s := c.Scope()
	for col := int8(0); col < int8(n); col++ {
		if !safe(board, col) {
			continue
		}
		next := make([]int8, row+1)
		copy(next, board)
		next[row] = col
		col := col
		s.Spawn(func(c nowa.Ctx) { counts[col] = countQueens(c, n, next) })
	}
	s.Sync()
	var total int64
	for _, v := range counts {
		total += v
	}
	return total
}

func safe(board []int8, col int8) bool {
	row := len(board)
	for r, c := range board {
		d := int8(row - r)
		if c == col || c == col-d || c == col+d {
			return false
		}
	}
	return true
}

func main() {
	n := flag.Int("n", 11, "board size")
	workers := flag.Int("workers", runtime.NumCPU(), "worker count")
	flag.Parse()

	fmt.Printf("counting %d-queens placements on %d workers\n\n", *n, *workers)
	for _, v := range nowa.Variants() {
		rt := nowa.New(v, *workers)
		start := time.Now()
		var total int64
		rt.Run(func(c nowa.Ctx) { total = countQueens(c, *n, nil) })
		fmt.Printf("%-14s %10d solutions in %v\n", rt.Name(), total, time.Since(start))
		nowa.Close(rt)
	}
}
