// Quickstart: the paper's Listing 1 (fib with spawn/sync) plus the
// structured combinators, on the wait-free Nowa runtime.
package main

import (
	"fmt"
	"runtime"
	"time"

	"nowa"
)

// fib mirrors Listing 1: spawn fib(n-1), compute fib(n-2) on this strand,
// sync, combine.
func fib(c nowa.Ctx, n int) int {
	if n < 2 {
		return n
	}
	var a int
	s := c.Scope()
	s.Spawn(func(c nowa.Ctx) { a = fib(c, n-1) })
	b := fib(c, n-2)
	s.Sync()
	return a + b
}

func main() {
	rt := nowa.New(nowa.VariantNowa, runtime.NumCPU())
	defer nowa.Close(rt)

	// 1. Raw spawn/sync.
	var f int
	start := time.Now()
	rt.Run(func(c nowa.Ctx) { f = fib(c, 27) })
	fmt.Printf("fib(27) = %d   (%v on %d workers)\n", f, time.Since(start), rt.Workers())

	// 2. Parallel for: square a vector in place.
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = float64(i)
	}
	rt.Run(func(c nowa.Ctx) {
		nowa.For(c, 0, len(xs), 0, func(_ nowa.Ctx, i int) {
			xs[i] = xs[i] * xs[i]
		})
	})
	fmt.Printf("xs[1000]^2 = %.0f\n", xs[1000])

	// 3. Parallel reduce: sum of squares.
	var sum float64
	rt.Run(func(c nowa.Ctx) {
		sum = nowa.Reduce(c, 0, len(xs), 4096, 0.0,
			func(_ nowa.Ctx, i int) float64 { return xs[i] },
			func(a, b float64) float64 { return a + b })
	})
	fmt.Printf("sum of squares = %.6g\n", sum)

	// 4. Parallel invoke: independent phases.
	var evens, odds int
	rt.Run(func(c nowa.Ctx) {
		nowa.Invoke(c,
			func(c nowa.Ctx) {
				evens = nowa.Reduce(c, 0, len(xs), 4096, 0,
					func(_ nowa.Ctx, i int) int {
						if i%2 == 0 {
							return 1
						}
						return 0
					}, func(a, b int) int { return a + b })
			},
			func(c nowa.Ctx) {
				odds = nowa.Reduce(c, 0, len(xs), 4096, 0,
					func(_ nowa.Ctx, i int) int { return i % 2 },
					func(a, b int) int { return a + b })
			},
		)
	})
	fmt.Printf("evens=%d odds=%d\n", evens, odds)
}
