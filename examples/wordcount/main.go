// Wordcount: a map/reduce text-analytics pipeline on the fork/join
// runtime — parallel tokenise+count per chunk, then parallel tree-merge of
// the partial histograms. The divide-and-conquer merge is the kind of
// irregular reduction the paper's fully-strict model expresses naturally.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"nowa"
)

// corpus synthesises deterministic prose-like text.
func corpus(words int) string {
	vocab := []string{
		"wait", "free", "continuation", "stealing", "runtime", "system",
		"worker", "thief", "deque", "spawn", "sync", "strand", "cactus",
		"stack", "counter", "atomic", "lock", "queue", "steal", "fork",
		"join", "parallel", "the", "a", "of", "and", "to", "in",
	}
	var b strings.Builder
	x := uint64(2463534242)
	for i := 0; i < words; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b.WriteString(vocab[x%uint64(len(vocab))])
		if x%13 == 0 {
			b.WriteString(".\n")
		} else {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func count(text string) map[string]int {
	m := make(map[string]int, 64)
	for _, w := range strings.FieldsFunc(text, func(r rune) bool {
		return r == ' ' || r == '\n' || r == '.'
	}) {
		m[w]++
	}
	return m
}

func mergeMaps(a, b map[string]int) map[string]int {
	if len(a) < len(b) {
		a, b = b, a
	}
	for k, v := range b {
		a[k] += v
	}
	return a
}

// countRange recursively splits the chunk index range, counting chunks at
// the leaves and merging histograms on the way up — a parallel reduction
// over an associative combiner.
func countRange(c nowa.Ctx, chunks []string, lo, hi int) map[string]int {
	if hi-lo == 1 {
		return count(chunks[lo])
	}
	mid := (lo + hi) / 2
	var left map[string]int
	s := c.Scope()
	s.Spawn(func(c nowa.Ctx) { left = countRange(c, chunks, lo, mid) })
	right := countRange(c, chunks, mid, hi)
	s.Sync()
	return mergeMaps(left, right)
}

func main() {
	words := flag.Int("words", 2_000_000, "corpus size in words")
	chunksN := flag.Int("chunks", 64, "number of parallel chunks")
	flag.Parse()

	text := corpus(*words)
	// Split on line boundaries near equal chunk sizes.
	chunks := make([]string, 0, *chunksN)
	per := len(text) / *chunksN
	for start := 0; start < len(text); {
		end := start + per
		if end >= len(text) {
			end = len(text)
		} else if nl := strings.IndexByte(text[end:], '\n'); nl >= 0 {
			end += nl + 1
		} else {
			end = len(text)
		}
		chunks = append(chunks, text[start:end])
		start = end
	}

	rt := nowa.New(nowa.VariantNowa, runtime.NumCPU())
	defer nowa.Close(rt)

	var hist map[string]int
	start := time.Now()
	rt.Run(func(c nowa.Ctx) {
		hist = countRange(c, chunks, 0, len(chunks))
	})
	elapsed := time.Since(start)

	type kv struct {
		w string
		n int
	}
	var top []kv
	total := 0
	for w, n := range hist {
		top = append(top, kv{w, n})
		total += n
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Printf("counted %d words (%d distinct) in %d chunks in %v\n\n", total, len(hist), len(chunks), elapsed)
	for i := 0; i < 8 && i < len(top); i++ {
		fmt.Printf("  %-14s %8d\n", top[i].w, top[i].n)
	}
}
