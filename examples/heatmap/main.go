// Heatmap: Jacobi heat diffusion with fork/join row-block parallelism
// (the paper's heat benchmark), rendered as coarse ASCII after simulation.
// Stencil codes are the bandwidth-bound end of the suite: speedup saturates
// long before the worker count does, which Figure 7 shows for heat.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"nowa"
)

type grid struct {
	nx, ny int
	cells  []float64
}

func newGrid(nx, ny int) *grid {
	g := &grid{nx: nx, ny: ny, cells: make([]float64, nx*ny)}
	// Hot left wall, warm spot in the centre.
	for y := 0; y < ny; y++ {
		g.cells[y*nx] = 100
	}
	g.cells[(ny/2)*nx+nx/2] = 80
	return g
}

// step applies one 5-point Jacobi update to rows [y0, y1).
func (g *grid) step(next []float64, y0, y1 int) {
	nx := g.nx
	for y := y0; y < y1; y++ {
		row := y * nx
		if y == 0 || y == g.ny-1 {
			copy(next[row:row+nx], g.cells[row:row+nx])
			continue
		}
		next[row] = g.cells[row]
		next[row+nx-1] = g.cells[row+nx-1]
		for x := 1; x < nx-1; x++ {
			i := row + x
			next[i] = g.cells[i] + 0.2*(g.cells[i-1]+g.cells[i+1]+g.cells[i-nx]+g.cells[i+nx]-4*g.cells[i])
		}
	}
}

func main() {
	nx := flag.Int("nx", 512, "grid width")
	ny := flag.Int("ny", 256, "grid height")
	steps := flag.Int("steps", 200, "timesteps")
	flag.Parse()

	rt := nowa.New(nowa.VariantNowa, runtime.NumCPU())
	defer nowa.Close(rt)

	g := newGrid(*nx, *ny)
	next := make([]float64, len(g.cells))
	start := time.Now()
	rt.Run(func(c nowa.Ctx) {
		for t := 0; t < *steps; t++ {
			// Parallel over row blocks each timestep.
			nowa.For(c, 0, g.ny, 8, func(_ nowa.Ctx, y int) {
				g.step(next, y, y+1)
			})
			g.cells, next = next, g.cells
		}
	})
	fmt.Printf("heat: %dx%d grid, %d steps in %v\n\n", *nx, *ny, *steps, time.Since(start))

	// Render a coarse thermal map.
	const shades = " .:-=+*#%@"
	for y := 0; y < 16; y++ {
		for x := 0; x < 64; x++ {
			v := g.cells[(y*g.ny/16)*g.nx+(x*g.nx/64)]
			idx := int(v / 100 * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			fmt.Print(string(shades[idx]))
		}
		fmt.Println()
	}
}
