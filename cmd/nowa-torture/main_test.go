package main

import (
	"testing"

	"nowa/internal/replay"
)

// TestChaosClassValidation pins the -chaos vocabulary checks: soak must
// refuse an unknown class loudly (exit 2) instead of silently drawing
// from a truncated list, and every advertised class — including the
// abort class added with the blocking layer — must be accepted and
// resolvable by drawChaos.
func TestChaosClassValidation(t *testing.T) {
	base := soakConfig{
		duration: 0, // validation runs before the trial loop; zero trials
		seed:     1,
		out:      t.TempDir(),
		kernels:  []string{"fib"},
		variants: []string{"nowa"},
		chaos:    []string{"definitely-not-a-class"},
		ringCap:  1 << 10, maxWorkers: 2,
	}
	if got := soak(base); got != 2 {
		t.Fatalf("soak with unknown chaos class: exit %d, want 2", got)
	}
	base.chaos = []string{}
	if got := soak(base); got != 2 {
		t.Fatalf("soak with empty chaos list: exit %d, want 2", got)
	}
	base.chaos = chaosClasses
	if got := soak(base); got != 0 {
		t.Fatalf("soak with the full class list: exit %d, want 0", got)
	}
	rng := uint64(7)
	for _, cl := range chaosClasses {
		spec := drawChaos(cl, &rng)
		if cl == "off" {
			if spec != nil {
				t.Fatalf("drawChaos(off) = %+v, want nil", spec)
			}
			continue
		}
		if spec == nil {
			t.Fatalf("drawChaos(%q) = nil", cl)
		}
		if got := chaosLabel(spec); got != "chaos="+cl {
			t.Fatalf("chaosLabel(drawChaos(%q)) = %q", cl, got)
		}
		if spec.LeakVessel != 0 {
			t.Fatalf("drawChaos(%q) armed the planted LeakVessel bug", cl)
		}
	}
	if drawChaos("abort", &rng).AbortWait == 0 {
		t.Fatal("abort class draws no AbortWait injection")
	}
}

// TestAbortTrialDraw pins the abort-class trial shape: a blocking
// kernel, eager spawns, and no resource budgets (a vessel or stack
// budget can lawfully deadlock a blocking kernel via keepToken).
func TestAbortTrialDraw(t *testing.T) {
	c := soakConfig{
		kernels:    []string{"fib"},
		variants:   []string{"nowa"},
		chaos:      []string{"abort"},
		maxWorkers: 4,
	}
	rng := uint64(42)
	for n := 0; n < 32; n++ {
		m := drawTrial(c, &rng, n)
		if m.Chaos == nil || m.Chaos.AbortWait == 0 {
			t.Fatalf("trial %d: no abort chaos drawn: %+v", n, m.Chaos)
		}
		if m.Kernel != "pipeline" && m.Kernel != "bfs" {
			t.Fatalf("trial %d: abort class drew non-blocking kernel %q", n, m.Kernel)
		}
		if !m.SpawnEager {
			t.Fatalf("trial %d: abort class without eager spawns", n)
		}
		if m.MaxVessels != 0 || m.SoftMaxVessels != 0 || m.MaxStacks != 0 {
			t.Fatalf("trial %d: abort class kept budgets v=%d sv=%d st=%d",
				n, m.MaxVessels, m.SoftMaxVessels, m.MaxStacks)
		}
	}
}

// TestAbortTrialRuns runs short abort-class trials end to end through
// runTrial — the same invariant battery the soak applies, including the
// wait-conservation bar — on both blocking kernels, with and without a
// deadline.
func TestAbortTrialRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full trials")
	}
	rng := uint64(3)
	for _, kernel := range []string{"pipeline", "bfs"} {
		for _, timeoutMS := range []int64{0, 1} {
			m := replay.Meta{
				Tool: "nowa-torture", Scale: "test",
				Kernel: kernel, Variant: "nowa",
				Workers: 2, Seed: 11,
				SpawnEager: true,
				TimeoutMS:  timeoutMS,
				Chaos:      drawChaos("abort", &rng),
			}
			if f := runTrial(m, nil, nil); f != "" {
				t.Fatalf("%s timeout=%dms: %s", kernel, timeoutMS, f)
			}
		}
	}
}
