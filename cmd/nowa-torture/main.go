// Command nowa-torture is the robustness soak driver: it cycles kernels ×
// scheduler variants × worker counts × chaos seeds/intensities × resource
// budgets × cancellation deadlines, continuously checking the scheduler's
// invariants after every trial. Every trial runs with the schedule
// recorder attached, so when an invariant breaks the tool already holds
// the event log: it writes a repro bundle (config + seeds + schedule),
// confirms the bundle replays to the same failure via Config.Replay, then
// shrinks the trial — fewer workers, lower chaos rates, no budgets, no
// deadline — to a minimal configuration that still fails, and writes the
// minimal bundle next to the original.
//
// Modes:
//
//	nowa-torture -duration 30s -out torture-out   # soak (exit 1 on failure)
//	nowa-torture -replay torture-out/x.bundle     # re-run a captured failure
//	nowa-torture -selftest                        # pipeline check against the
//	                                              # planted Chaos.LeakVessel bug
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nowa/internal/api"
	"nowa/internal/apps"
	"nowa/internal/blockapps"
	"nowa/internal/cactus"
	"nowa/internal/deque"
	"nowa/internal/replay"
	"nowa/internal/sched"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "soak duration")
		seed     = flag.Int64("seed", 1, "trial-matrix seed")
		out      = flag.String("out", "torture-out", "directory for repro bundles")
		kernels  = flag.String("kernels", "fib,integrate,quicksort,nqueens", "comma-separated kernel list (test scale)")
		variants = flag.String("variants", "nowa,nowa-the,fibril,cilkplus", "comma-separated variant list")
		chaos    = flag.String("chaos", strings.Join(chaosClasses, ","),
			"comma-separated chaos classes the matrix may draw (off, light, heavy, promote, stall, abort)")
		maxWorkers = flag.Int("workers", runtime.NumCPU(), "cap on trial worker counts")
		ringCap    = flag.Int("ring", 1<<15, "per-worker recorder capacity (events)")
		replayPath = flag.String("replay", "", "replay a bundle instead of soaking")
		selftest   = flag.Bool("selftest", false, "validate the capture→replay→shrink pipeline against the planted LeakVessel bug")
		service    = flag.Bool("service", false, "soak service mode instead of batch runs: concurrent submissions with mixed deadlines, priorities, panics and admission chaos, checking drain quiescence and accounting")
		verbose    = flag.Bool("v", false, "log every trial")
	)
	flag.Parse()

	switch {
	case *replayPath != "":
		os.Exit(replayBundle(*replayPath, *verbose))
	case *selftest:
		os.Exit(selfTest(*out, *ringCap))
	default:
		os.Exit(soak(soakConfig{
			duration:   *duration,
			seed:       *seed,
			out:        *out,
			kernels:    splitList(*kernels),
			variants:   splitList(*variants),
			chaos:      splitList(*chaos),
			maxWorkers: *maxWorkers,
			ringCap:    *ringCap,
			service:    *service,
			verbose:    *verbose,
		}))
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// variantConfig maps a variant name from a trial or a bundle onto its
// scheduler configuration — the same mapping the public nowa package
// uses, restated here so a bundle is self-describing by name.
func variantConfig(name string, workers int) (sched.Config, error) {
	switch name {
	case "nowa":
		return sched.Config{Name: name, Workers: workers, Deque: deque.CL, Join: sched.WaitFree}, nil
	case "nowa-the":
		return sched.Config{Name: name, Workers: workers, Deque: deque.THE, Join: sched.WaitFree}, nil
	case "fibril":
		return sched.Config{Name: name, Workers: workers, Deque: deque.THE, Join: sched.LockedFibril}, nil
	case "cilkplus":
		return sched.Config{Name: name, Workers: workers, Deque: deque.THE, Join: sched.LockedFibril,
			Stacks: cactus.Config{GlobalCap: 8 * workers}}, nil
	}
	return sched.Config{}, fmt.Errorf("unknown variant %q (want nowa, nowa-the, fibril or cilkplus)", name)
}

// chaosFromSpec converts a bundle's serialised chaos block back into the
// scheduler's form; specFromChaos is its inverse. The two structs mirror
// each other field for field (replay cannot import sched).
func chaosFromSpec(s *replay.ChaosSpec) *sched.Chaos {
	if s == nil {
		return nil
	}
	return &sched.Chaos{
		Seed: s.Seed, StealDelay: s.StealDelay, StealFail: s.StealFail,
		PopBottomDelay: s.PopBottomDelay, SyncDelay: s.SyncDelay,
		AllocFail: s.AllocFail, SyncVesselFail: s.SyncVesselFail,
		LeakVessel: s.LeakVessel, SubmitFail: s.SubmitFail,
		StealInterest: s.StealInterest, DelaySpins: s.DelaySpins,
		StallWorker: s.StallWorker, StallFor: time.Duration(s.StallForUS) * time.Microsecond,
		SubmitLatency:    s.SubmitLatency,
		SubmitLatencyFor: time.Duration(s.SubmitLatencyForUS) * time.Microsecond,
		AbortWait:        s.AbortWait, WakeupDelay: s.WakeupDelay,
	}
}

func specFromChaos(c *sched.Chaos) *replay.ChaosSpec {
	if c == nil {
		return nil
	}
	return &replay.ChaosSpec{
		Seed: c.Seed, StealDelay: c.StealDelay, StealFail: c.StealFail,
		PopBottomDelay: c.PopBottomDelay, SyncDelay: c.SyncDelay,
		AllocFail: c.AllocFail, SyncVesselFail: c.SyncVesselFail,
		LeakVessel: c.LeakVessel, SubmitFail: c.SubmitFail,
		StealInterest: c.StealInterest, DelaySpins: c.DelaySpins,
		StallWorker: c.StallWorker, StallForUS: c.StallFor.Microseconds(),
		SubmitLatency:      c.SubmitLatency,
		SubmitLatencyForUS: c.SubmitLatencyFor.Microseconds(),
		AbortWait:          c.AbortWait, WakeupDelay: c.WakeupDelay,
	}
}

// buildConfig turns a trial description (which doubles as the bundle
// metadata) into a runnable scheduler configuration.
func buildConfig(m replay.Meta) (sched.Config, error) {
	cfg, err := variantConfig(m.Variant, m.Workers)
	if err != nil {
		return sched.Config{}, err
	}
	cfg.Seed = m.Seed
	cfg.DequeCap = m.DequeCap
	cfg.MaxVessels = m.MaxVessels
	cfg.SoftMaxVessels = m.SoftMaxVessels
	if m.MaxStacks > 0 {
		cfg.Stacks.GlobalCap = m.MaxStacks
		cfg.Stacks.CapMode = cactus.CapSoft
	}
	cfg.ParkAfter = m.ParkAfter
	if m.SpawnEager {
		cfg.Spawn = sched.SpawnEager
	}
	cfg.Chaos = chaosFromSpec(m.Chaos)
	cfg.StallThreshold = time.Duration(m.StallThresholdUS) * time.Microsecond
	cfg.MaxSupplements = m.MaxSupplements
	return cfg, nil
}

// recSlots is the recorder width a trial needs: base workers plus the
// supplemental slots stall recovery may occupy (supplements record
// scheduling decisions on extended slot indices).
func recSlots(m replay.Meta) int {
	if m.StallThresholdUS <= 0 {
		return m.Workers
	}
	if m.MaxSupplements > 0 {
		return m.Workers + m.MaxSupplements
	}
	return 2 * m.Workers // MaxSupplements defaults to Workers
}

// runTrial executes one trial and checks every invariant, returning ""
// on a clean pass or a "class: detail" failure string. A non-nil rec is
// attached for capture; a non-nil log drives the run via Config.Replay.
func runTrial(m replay.Meta, rec *replay.Recorder, log *replay.Log) (failure string) {
	cfg, err := buildConfig(m)
	if err != nil {
		return "config: " + err.Error()
	}
	cfg.Record = rec
	cfg.Replay = log
	rt, err := sched.New(cfg)
	if err != nil {
		return "config: " + err.Error()
	}
	defer rt.Close()
	app, err := blockapps.ByName(m.Kernel, apps.Test)
	if err != nil {
		return "config: " + err.Error()
	}
	app.Prepare()

	var runErr error
	panicked := func() (p string) {
		defer func() {
			if r := recover(); r != nil {
				p = fmt.Sprintf("panic: %v", r)
			}
		}()
		if m.TimeoutMS > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(m.TimeoutMS)*time.Millisecond)
			defer cancel()
			runErr = rt.RunCtx(ctx, app.Run)
		} else {
			rt.Run(app.Run)
		}
		return ""
	}()
	if panicked != "" {
		return panicked
	}

	// Serial equivalence: a run that was not cancelled must compute the
	// serial answer, whatever the schedule and the (sound) chaos did.
	if runErr == nil {
		if err := app.Verify(); err != nil {
			return "verify: " + err.Error()
		}
	}
	// Token conservation: every worker token handed out came back.
	if left := rt.DebugTokensLeft(); left != 0 {
		return fmt.Sprintf("tokens: %d tokens unaccounted after Run", left)
	}
	// Quiescence: no continuation may survive in any deque, including
	// the extended slots stall-recovery supplements ran on.
	for w := 0; w < rt.DebugSlots(); w++ {
		if n := rt.DebugDequeSize(w); n != 0 {
			return fmt.Sprintf("quiescence: deque %d holds %d continuations after Run", w, n)
		}
	}
	// Leak reconciliation: idle-time resource accounting must balance.
	st := rt.Stats()
	// Supplement conservation: every supplemental worker dispatched by
	// stall recovery retired its token by the end of the run.
	if st.WorkersSupplemented != st.SupplementsRetired {
		return fmt.Sprintf("supplement-leak: %d supplements dispatched, %d retired",
			st.WorkersSupplemented, st.SupplementsRetired)
	}
	if st.VesselsLeaked != 0 {
		return fmt.Sprintf("vessel-leak: %d vessels never returned to a free list", st.VesselsLeaked)
	}
	if st.StacksLeaked != 0 {
		return fmt.Sprintf("stack-leak: %d stacks unaccounted", st.StacksLeaked)
	}
	if st.ScopesLeaked != 0 {
		return fmt.Sprintf("scope-leak: %d scopes abandoned", st.ScopesLeaked)
	}
	// Wait conservation: every external blocking wait ended exactly once,
	// by resume or by abort, and nothing is still parked. Checked under a
	// deadline too — cancellation must abort waiters, never strand them —
	// which is the torture invariant behind the abort chaos class.
	if st.BlockedWaits != st.ResumedWaits+st.AbortedWaits {
		return fmt.Sprintf("wait-leak: BlockedWaits(%d) != ResumedWaits(%d)+AbortedWaits(%d)",
			st.BlockedWaits, st.ResumedWaits, st.AbortedWaits)
	}
	if st.BlockedLive != 0 {
		return fmt.Sprintf("wait-leak: %d waiters still parked after Run", st.BlockedLive)
	}
	// Counter conservation: every eagerly published continuation was
	// either popped back or stolen; inline commits (lazy promotion,
	// DESIGN.md §14) produce neither. (Skipped under a deadline:
	// cancellation legitimately redirects spawns inline mid-flight.)
	if m.TimeoutMS == 0 {
		c := rt.Counters()
		if c.LocalResumes+c.Steals != c.Spawns-c.InlineRuns {
			return fmt.Sprintf("counters: LocalResumes(%d)+Steals(%d) != Spawns(%d)-InlineRuns(%d)",
				c.LocalResumes, c.Steals, c.Spawns, c.InlineRuns)
		}
	}
	return ""
}

// --- Service-mode soak (-service) ---------------------------------------

// serviceSpec is one service trial's shape: the admission configuration
// plus the submission mix the producers generate.
type serviceSpec struct {
	policy        sched.OverloadPolicy
	depth         int
	producers     int
	perProd       int
	panicEvery    int // every Nth submission panics at top level (0 = never)
	deadlineEvery int // every Nth submission carries a 0–3ms deadline
	prioEvery     int // every Nth submission is high priority
	stallEvery    int // every Nth submission sleeps 2ms mid-strand (0 = never)
	burst         int // submissions left in flight when Close drains
}

func drawServiceSpec(rng *uint64) serviceSpec {
	pick := func(k int) int { return int(splitmix64(rng) % uint64(k)) }
	return serviceSpec{
		policy:        []sched.OverloadPolicy{sched.OverloadBlock, sched.OverloadFailFast, sched.OverloadShed}[pick(3)],
		depth:         []int{1, 4, 16, 64}[pick(4)],
		producers:     2 + pick(6),
		perProd:       20 + pick(60),
		panicEvery:    []int{0, 5, 9}[pick(3)],
		deadlineEvery: []int{0, 3, 7}[pick(3)],
		prioEvery:     []int{0, 4}[pick(2)],
		stallEvery:    []int{0, 0, 7}[pick(3)],
		burst:         pick(24),
	}
}

func serviceLabel(m replay.Meta, sc serviceSpec) string {
	return fmt.Sprintf("service/%s w=%d seed=%d %s policy=%s depth=%d producers=%d×%d panic1/%d deadline1/%d stall1/%d burst=%d",
		m.Variant, m.Workers, m.Seed, chaosLabel(m.Chaos), sc.policy, sc.depth,
		sc.producers, sc.perProd, sc.panicEvery, sc.deadlineEvery, sc.stallEvery, sc.burst)
}

// tortureSink keeps the service-trial spin work observable.
var tortureSink atomic.Int64

func spinWork(iters int) int {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return int(x & 0xff)
}

// runServiceTrial soaks one service-mode configuration: concurrent
// producers submit fork/join tasks with mixed deadlines, priorities and
// planted top-level panics into a serving runtime; some submissions are
// deliberately left in flight when Close drains. Afterwards every
// future must be resolved and the scheduler quiescent: tokens conserved,
// deques empty, no leaked vessels/stacks/scopes, and the admission
// accounting balanced. Service trials are wall-clock driven (external
// arrivals are not replayable), so failures are reported by seed rather
// than captured as schedule bundles.
func runServiceTrial(m replay.Meta, sc serviceSpec) (failure string) {
	m.TimeoutMS = 0 // deadlines are per-submission here
	cfg, err := buildConfig(m)
	if err != nil {
		return "config: " + err.Error()
	}
	rt, err := sched.New(cfg)
	if err != nil {
		return "config: " + err.Error()
	}
	defer rt.Close()
	if err := rt.StartService(sched.ServiceConfig{
		QueueDepth: sc.depth, Policy: sc.policy, DrainTimeout: 30 * time.Second,
	}); err != nil {
		return "config: " + err.Error()
	}

	task := func(c api.Ctx) {
		s := c.Scope()
		var a, b int
		s.Spawn(func(api.Ctx) { a = spinWork(256) })
		s.Spawn(func(api.Ctx) { b = spinWork(256) })
		d := spinWork(256)
		s.Sync()
		tortureSink.Add(int64(a + b + d))
	}
	// stallTask plants an application-level mid-strand stall: a spawned
	// strand sleeps while holding its worker token, exactly the fault
	// stall recovery (Config.StallThreshold) exists to survive. When the
	// trial arms recovery, these sleeps drive seize/supplement cycles
	// concurrently with panics, deadlines and admission chaos.
	stallTask := func(c api.Ctx) {
		s := c.Scope()
		var a, b int
		s.Spawn(func(api.Ctx) { time.Sleep(2 * time.Millisecond); a = spinWork(256) })
		s.Spawn(func(api.Ctx) { b = spinWork(256) })
		d := spinWork(256)
		s.Sync()
		tortureSink.Add(int64(a + b + d))
	}
	// Top-level only: a panic inside an open scope legitimately reports
	// the scope as leaked, which would drown the leak invariant below.
	panicTask := func(api.Ctx) { panic("torture: planted submission panic") }

	// A submission future may legally resolve to any of these.
	okOutcome := func(err error) bool {
		return err == nil ||
			errors.Is(err, sched.ErrShed) ||
			errors.Is(err, sched.ErrDrainForced) ||
			errors.Is(err, context.DeadlineExceeded) ||
			errors.As(err, new(*api.StrandPanic))
	}

	errCh := make(chan string, sc.producers)
	var wg sync.WaitGroup
	for p := 0; p < sc.producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			subs := make([]*sched.Submission, 0, sc.perProd)
			for i := 0; i < sc.perProd; i++ {
				n := p*sc.perProd + i
				t := task
				if sc.stallEvery > 0 && n%sc.stallEvery == 0 {
					t = stallTask
				}
				if sc.panicEvery > 0 && n%sc.panicEvery == 0 {
					t = panicTask
				}
				var opts sched.SubmitOpts
				if sc.deadlineEvery > 0 && n%sc.deadlineEvery == 0 {
					// 0–3ms: some expire in the queue, some mid-flight.
					opts.Deadline = time.Now().Add(time.Duration(n%4) * time.Millisecond)
				}
				if sc.prioEvery > 0 && n%sc.prioEvery == 0 {
					opts.Priority = 1
				}
				sub, err := rt.Submit(t, opts)
				if err != nil {
					// Legal refusals: overload (policy or chaos), and a
					// Block-policy wait outlived by the submission's own
					// deadline.
					if errors.Is(err, sched.ErrOverloaded) ||
						errors.Is(err, context.DeadlineExceeded) {
						continue
					}
					errCh <- "submit: unexpected error " + err.Error()
					return
				}
				subs = append(subs, sub)
			}
			for _, sub := range subs {
				if werr := sub.Wait(); !okOutcome(werr) {
					errCh <- fmt.Sprintf("outcome: unexpected submission error %v", werr)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	select {
	case f := <-errCh:
		return f
	default:
	}

	// Leave a burst in flight and drain through Close: every future must
	// still resolve (completed, shed, or force-cancelled — never lost).
	burst := make([]*sched.Submission, 0, sc.burst)
	for i := 0; i < sc.burst; i++ {
		sub, err := rt.Submit(task, sched.SubmitOpts{})
		if err != nil {
			continue
		}
		burst = append(burst, sub)
	}
	rt.Close()
	for i, sub := range burst {
		select {
		case <-sub.Done():
		default:
			return fmt.Sprintf("drain: burst submission %d unresolved after Close", i)
		}
		if werr := sub.Err(); !okOutcome(werr) {
			return fmt.Sprintf("outcome: burst submission %d resolved with unexpected error %v", i, werr)
		}
	}

	// Quiescence and conservation after drain, over every slot the run
	// could schedule on (supplements included).
	if left := rt.DebugTokensLeft(); left != 0 {
		return fmt.Sprintf("tokens: %d tokens unaccounted after drain", left)
	}
	for w := 0; w < rt.DebugSlots(); w++ {
		if n := rt.DebugDequeSize(w); n != 0 {
			return fmt.Sprintf("quiescence: deque %d holds %d continuations after drain", w, n)
		}
	}
	st := rt.Stats()
	if st.WorkersSupplemented != st.SupplementsRetired {
		return fmt.Sprintf("supplement-leak: %d supplements dispatched, %d retired",
			st.WorkersSupplemented, st.SupplementsRetired)
	}
	if st.VesselsLeaked != 0 {
		return fmt.Sprintf("vessel-leak: %d vessels never returned to a free list", st.VesselsLeaked)
	}
	if st.StacksLeaked != 0 {
		return fmt.Sprintf("stack-leak: %d stacks unaccounted", st.StacksLeaked)
	}
	if st.ScopesLeaked != 0 {
		return fmt.Sprintf("scope-leak: %d scopes abandoned", st.ScopesLeaked)
	}
	if ss, ok := rt.ServiceStats(); ok {
		if ss.Queued != 0 || ss.InFlight != 0 {
			return fmt.Sprintf("drain: %d queued, %d in flight after Close", ss.Queued, ss.InFlight)
		}
		if got := ss.Completed + ss.Panicked + ss.Cancelled + ss.Shed; got != ss.Admitted {
			return fmt.Sprintf("accounting: admitted %d != completed %d + panicked %d + cancelled %d + shed %d",
				ss.Admitted, ss.Completed, ss.Panicked, ss.Cancelled, ss.Shed)
		}
	}
	return ""
}

// failureClass is the stable prefix of a failure string, used to decide
// whether a rerun reproduced "the same" failure (details like leak
// counts may vary across multi-worker schedules).
func failureClass(f string) string {
	if i := strings.IndexByte(f, ':'); i >= 0 {
		return f[:i]
	}
	return f
}

// reproduces reports whether the trial still fails with the same class,
// giving multi-worker trials a few attempts (their schedules are only
// reproduced best-effort).
func reproduces(m replay.Meta, class string, ringCap int) bool {
	attempts := 1
	if m.Workers > 1 {
		attempts = 3
	}
	for i := 0; i < attempts; i++ {
		rec := replay.NewRecorder(recSlots(m), ringCap)
		if f := runTrial(m, rec, nil); failureClass(f) == class {
			return true
		}
	}
	return false
}

// shrink reduces a failing trial toward a minimal one that still fails
// with the same class: fewer workers, no deadline, no budgets, lower
// chaos rates. Each reduction is kept only if the failure survives it.
// The search is a bounded fixed-point pass over the reduction list.
func shrink(m replay.Meta, class string, ringCap int, verbose bool) replay.Meta {
	budget := 64 // total candidate reruns
	try := func(cand replay.Meta, what string) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if reproduces(cand, class, ringCap) {
			if verbose {
				fmt.Printf("  shrink: kept %s\n", what)
			}
			return true
		}
		return false
	}
	for changed := true; changed && budget > 0; {
		changed = false
		if m.Workers > 1 {
			cand := m
			cand.Workers = m.Workers / 2
			if try(cand, fmt.Sprintf("workers %d -> %d", m.Workers, cand.Workers)) {
				m = cand
				changed = true
			}
		}
		if m.TimeoutMS > 0 {
			cand := m
			cand.TimeoutMS = 0
			if try(cand, "deadline dropped") {
				m = cand
				changed = true
			}
		}
		if m.MaxVessels > 0 || m.SoftMaxVessels > 0 || m.MaxStacks > 0 {
			cand := m
			cand.MaxVessels, cand.SoftMaxVessels, cand.MaxStacks = 0, 0, 0
			if try(cand, "budgets dropped") {
				m = cand
				changed = true
			}
		}
		if m.ParkAfter != 0 || m.DequeCap != 0 {
			cand := m
			cand.ParkAfter, cand.DequeCap = 0, 0
			if try(cand, "park/deque knobs reset") {
				m = cand
				changed = true
			}
		}
		if m.StallThresholdUS > 0 {
			// Disarming recovery removes the supplement machinery from
			// the repro; a failure that survives was never about it.
			cand := m
			cand.StallThresholdUS, cand.MaxSupplements = 0, 0
			if try(cand, "stall recovery disarmed") {
				m = cand
				changed = true
			}
		}
		if m.Chaos != nil {
			// Try dropping each injection outright, then halving it.
			rates := []*int{
				&m.Chaos.StealDelay, &m.Chaos.StealFail, &m.Chaos.PopBottomDelay,
				&m.Chaos.SyncDelay, &m.Chaos.AllocFail, &m.Chaos.SyncVesselFail,
				&m.Chaos.LeakVessel, &m.Chaos.SubmitFail, &m.Chaos.StealInterest,
				&m.Chaos.StallWorker, &m.Chaos.SubmitLatency,
				&m.Chaos.AbortWait, &m.Chaos.WakeupDelay,
			}
			names := []string{"steal-delay", "steal-fail", "popbottom-delay",
				"sync-delay", "alloc-fail", "sync-vessel-fail", "leak-vessel",
				"submit-fail", "steal-interest", "stall-worker", "submit-latency",
				"abort-wait", "wakeup-delay"}
			for i, r := range rates {
				if *r == 0 {
					continue
				}
				cand := m
				cc := *m.Chaos
				cand.Chaos = &cc
				ccRates := []*int{
					&cc.StealDelay, &cc.StealFail, &cc.PopBottomDelay,
					&cc.SyncDelay, &cc.AllocFail, &cc.SyncVesselFail,
					&cc.LeakVessel, &cc.SubmitFail, &cc.StealInterest,
					&cc.StallWorker, &cc.SubmitLatency,
					&cc.AbortWait, &cc.WakeupDelay,
				}
				*ccRates[i] = 0
				if try(cand, "chaos "+names[i]+" dropped") {
					m = cand
					changed = true
					continue
				}
				if *r > 1 {
					*ccRates[i] = *r / 2
					if try(cand, "chaos "+names[i]+" halved") {
						m = cand
						changed = true
					}
				}
			}
			// Dropped rates leave their duration knobs inert; clear them
			// so the minimal bundle does not advertise dead injections.
			if m.Chaos.StallWorker == 0 {
				m.Chaos.StallForUS = 0
			}
			if m.Chaos.SubmitLatency == 0 {
				m.Chaos.SubmitLatencyForUS = 0
			}
			if allZero(m.Chaos) {
				m.Chaos = nil
			}
		}
	}
	return m
}

func allZero(c *replay.ChaosSpec) bool {
	return c.StealDelay == 0 && c.StealFail == 0 && c.PopBottomDelay == 0 &&
		c.SyncDelay == 0 && c.AllocFail == 0 && c.SyncVesselFail == 0 &&
		c.LeakVessel == 0 && c.SubmitFail == 0 && c.StealInterest == 0 &&
		c.StallWorker == 0 && c.SubmitLatency == 0 &&
		c.AbortWait == 0 && c.WakeupDelay == 0
}

// captureFailure re-runs a failing trial with a fresh recorder, writes
// the repro bundle, and confirms the bundle replays to the same failure
// class. Returns the bundle path ("" if the failure evaporated).
func captureFailure(m replay.Meta, class, dir string, ringCap int, suffix string) (string, error) {
	rec := replay.NewRecorder(recSlots(m), ringCap)
	f := runTrial(m, rec, nil)
	if failureClass(f) != class {
		// Flaky beyond the recorder's reach; try a couple more times.
		for i := 0; i < 2 && failureClass(f) != class; i++ {
			rec = replay.NewRecorder(recSlots(m), ringCap)
			f = runTrial(m, rec, nil)
		}
		if failureClass(f) != class {
			return "", nil
		}
	}
	m.Tool = "nowa-torture"
	m.Scale = "test"
	m.Failure = f
	log := rec.Snapshot()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s-%s-w%d-s%d%s.bundle", m.Kernel, m.Variant, m.Workers, m.Seed, suffix)
	path := filepath.Join(dir, name)
	if err := replay.SaveBundle(path, m, log); err != nil {
		return "", err
	}
	// Confirm the bundle drives a rerun to the same failure class.
	if rf := runTrial(m, nil, log); failureClass(rf) == class {
		fmt.Printf("  bundle %s replays to the same failure (%s)\n", path, failureClass(rf))
	} else {
		fmt.Printf("  warning: bundle %s replayed to %q, captured %q\n", path, rf, f)
	}
	return path, nil
}

type soakConfig struct {
	duration   time.Duration
	seed       int64
	out        string
	kernels    []string
	variants   []string
	chaos      []string
	maxWorkers int
	ringCap    int
	service    bool
	verbose    bool
}

// splitmix64 steps the trial-matrix RNG.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chaosClasses is the trial-matrix chaos vocabulary, selectable with
// the -chaos flag.
var chaosClasses = []string{"off", "light", "heavy", "promote", "stall", "abort"}

// drawChaos builds one chaos class's injection spec. Chaos.LeakVessel
// stays zero in every class by design: it is the planted bug, exercised
// only by -selftest, and arming it in the soak would make every trial
// fail.
func drawChaos(class string, rng *uint64) *replay.ChaosSpec {
	seed := func() int64 { return int64(splitmix64(rng)%(1<<31) + 1) }
	switch class {
	case "off":
		return nil
	case "light":
		return &replay.ChaosSpec{
			Seed:      seed(),
			StealFail: 16, PopBottomDelay: 16, SyncDelay: 16,
			StealInterest: 16, DelaySpins: 2,
		}
	case "heavy":
		return &replay.ChaosSpec{
			Seed:       seed(),
			StealDelay: 64, StealFail: 128, PopBottomDelay: 128,
			SyncDelay: 128, AllocFail: 64, SyncVesselFail: 64,
			StealInterest: 128, DelaySpins: 4,
		}
	case "promote":
		// Promotion chaos: every lazy spawn is forced to promote
		// mid-inline-run, hammering the record state machine against the
		// same budget/deadline draws below. Serial equivalence and the
		// leak bars are checked by runTrial like any other trial.
		return &replay.ChaosSpec{
			Seed:          seed(),
			StealInterest: 1024, StealFail: 16, PopBottomDelay: 16,
			DelaySpins: 2,
		}
	case "stall":
		// Stall chaos: random strands pin their worker token for 2ms at
		// chaos sites, shrinking effective parallelism mid-run. Trials in
		// this class arm stall recovery (drawTrial), so every trial
		// exercises seize → supplement → retire alongside light steal
		// chaos, with conservation checked like any other trial.
		return &replay.ChaosSpec{
			Seed:        seed(),
			StallWorker: 48, StallForUS: 2000,
			StealFail: 16, DelaySpins: 2,
		}
	case "abort":
		// Abort chaos: external waits are force-aborted at chaos sites and
		// wakeups are delayed, racing WakeAborted against Wake in the cqs
		// cell CAS. Trials in this class run the blocking kernels
		// (drawTrial) so there are waiters to abort, and runTrial's wait
		// conservation bar catches any stranded or double-ended waiter.
		return &replay.ChaosSpec{
			Seed:      seed(),
			AbortWait: 96, WakeupDelay: 64,
			StealFail: 16, DelaySpins: 2,
		}
	}
	panic("unknown chaos class " + class)
}

// drawTrial picks one point in the trial matrix.
func drawTrial(c soakConfig, rng *uint64, n int) replay.Meta {
	pick := func(k int) int { return int(splitmix64(rng) % uint64(k)) }
	workersChoices := []int{1, 2, 4, c.maxWorkers}
	w := workersChoices[pick(len(workersChoices))]
	if w > c.maxWorkers {
		w = c.maxWorkers
	}
	if w < 1 {
		w = 1
	}
	m := replay.Meta{
		Tool:    "nowa-torture",
		Kernel:  c.kernels[pick(len(c.kernels))],
		Scale:   "test",
		Variant: c.variants[pick(len(c.variants))],
		Workers: w,
		Seed:    int64(n)*37 + int64(pick(1024)) + 1,
	}
	class := c.chaos[pick(len(c.chaos))]
	m.Chaos = drawChaos(class, rng)
	if class == "abort" {
		// Abort trials need waiters to abort: swap in a blocking kernel
		// and force eager spawns (the blocking kernels deadlock under lazy
		// spawns — a parked stage's unblocker is a later-spawned sibling).
		names := blockapps.BlockingNames()
		m.Kernel = names[pick(len(names))]
		m.SpawnEager = true
	}
	if class == "stall" {
		// Arm recovery well under the injected 2ms stall so every stall
		// that backs work up is seizable; sometimes cap the supplement
		// pool at one to cover the all-slots-busy stand-down path.
		m.StallThresholdUS = 500
		if pick(2) == 1 {
			m.MaxSupplements = 1
		}
	}
	if c.service && m.Chaos != nil {
		// Admission-time refusals only fire in service mode; batch
		// trials leave the rate zero so the shrinker has nothing bogus
		// to chew on.
		if m.Chaos.StealFail >= 128 {
			m.Chaos.SubmitFail = 128
		} else {
			m.Chaos.SubmitFail = 16
		}
		if class == "stall" {
			// Stalled service trials also jitter the admission path so
			// seizures race queued arrivals and slow submitters at once.
			m.Chaos.SubmitLatency = 16
			m.Chaos.SubmitLatencyForUS = 500
		}
	}
	switch pick(3) {
	case 1:
		m.MaxVessels = w + 2
	case 2:
		m.MaxVessels = 4 * w
		m.SoftMaxVessels = 2 * w
	}
	if pick(4) == 1 {
		m.MaxStacks = 4 * w
	}
	switch pick(4) {
	case 1:
		m.TimeoutMS = 1
	case 2:
		m.TimeoutMS = 5
	}
	if pick(4) == 1 {
		m.ParkAfter = 64
	}
	if class == "abort" {
		// Resource budgets can lawfully deadlock a blocking kernel: a hard
		// vessel budget makes PrepareWait keep the worker token (keepToken),
		// and a stack budget can park every strand that could free a stack.
		// Blocking trials drop them and lean on short deadlines instead, so
		// most trials cancel mid-churn with waiters in flight.
		m.MaxVessels, m.SoftMaxVessels, m.MaxStacks = 0, 0, 0
		if m.TimeoutMS == 0 && pick(2) == 1 {
			m.TimeoutMS = 1
		}
	}
	return m
}

// chaosLabel classifies a chaos spec back into its matrix class name.
func chaosLabel(c *replay.ChaosSpec) string {
	switch {
	case c == nil:
		return "chaos=off"
	case c.AbortWait > 0 || c.WakeupDelay > 0:
		return "chaos=abort"
	case c.StallWorker > 0:
		return "chaos=stall"
	case c.StealInterest >= 512:
		return "chaos=promote"
	case c.StealFail >= 128:
		return "chaos=heavy"
	default:
		return "chaos=light"
	}
}

func trialLabel(m replay.Meta) string {
	label := fmt.Sprintf("%s/%s w=%d seed=%d %s vessels=%d stacks=%d timeout=%dms",
		m.Kernel, m.Variant, m.Workers, m.Seed, chaosLabel(m.Chaos),
		m.MaxVessels, m.MaxStacks, m.TimeoutMS)
	if m.StallThresholdUS > 0 {
		label += fmt.Sprintf(" recovery=%dµs/sup%d", m.StallThresholdUS, m.MaxSupplements)
	}
	return label
}

func soak(c soakConfig) int {
	sort.Strings(c.kernels)
	for _, k := range c.kernels {
		if _, err := blockapps.ByName(k, apps.Test); err != nil {
			fmt.Fprintln(os.Stderr, "nowa-torture:", err)
			return 2
		}
	}
	for _, v := range c.variants {
		if _, err := variantConfig(v, 1); err != nil {
			fmt.Fprintln(os.Stderr, "nowa-torture:", err)
			return 2
		}
	}
	if len(c.chaos) == 0 {
		fmt.Fprintln(os.Stderr, "nowa-torture: empty -chaos class list")
		return 2
	}
	for _, cl := range c.chaos {
		ok := false
		for _, known := range chaosClasses {
			ok = ok || cl == known
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "nowa-torture: unknown chaos class %q (want %s)\n",
				cl, strings.Join(chaosClasses, ", "))
			return 2
		}
	}
	rng := uint64(c.seed)*0x9e3779b97f4a7c15 + 1
	deadline := time.Now().Add(c.duration)
	trials, failures := 0, 0
	var bundles []string
	for time.Now().Before(deadline) {
		if c.service {
			m := drawTrial(c, &rng, trials)
			sc := drawServiceSpec(&rng)
			if sc.stallEvery > 0 && m.StallThresholdUS == 0 {
				// Planted mid-strand stalls are the application-level
				// fault; arm recovery so they drive seize/supplement
				// cycles rather than just slow the trial down.
				m.StallThresholdUS = 500
			}
			trials++
			f := runServiceTrial(m, sc)
			if c.verbose {
				status := "ok"
				if f != "" {
					status = "FAIL " + f
				}
				fmt.Printf("trial %4d: %s: %s\n", trials, serviceLabel(m, sc), status)
			}
			if f != "" {
				failures++
				fmt.Printf("FAILURE in service trial %d (%s): %s\n", trials, serviceLabel(m, sc), f)
				fmt.Printf("  (service trials are wall-clock driven and not bundle-replayable; rerun with -service -seed %d)\n", c.seed)
			}
			continue
		}
		m := drawTrial(c, &rng, trials)
		trials++
		rec := replay.NewRecorder(recSlots(m), c.ringCap)
		f := runTrial(m, rec, nil)
		if c.verbose {
			status := "ok"
			if f != "" {
				status = "FAIL " + f
			}
			fmt.Printf("trial %4d: %s: %s\n", trials, trialLabel(m), status)
		}
		if f == "" {
			continue
		}
		failures++
		class := failureClass(f)
		fmt.Printf("FAILURE in trial %d (%s): %s\n", trials, trialLabel(m), f)
		path, err := captureFailure(m, class, c.out, c.ringCap, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "nowa-torture: writing bundle:", err)
		} else if path == "" {
			fmt.Println("  failure did not reproduce under recapture; not shrinking")
			continue
		} else {
			bundles = append(bundles, path)
		}
		min := shrink(m, class, c.ringCap, c.verbose)
		fmt.Printf("  shrunk to: %s\n", trialLabel(min))
		if minPath, err := captureFailure(min, class, c.out, c.ringCap, "-min"); err != nil {
			fmt.Fprintln(os.Stderr, "nowa-torture: writing minimal bundle:", err)
		} else if minPath != "" {
			bundles = append(bundles, minPath)
		}
	}
	fmt.Printf("nowa-torture: %d trials, %d failures in %v\n", trials, failures, c.duration)
	if failures > 0 {
		fmt.Println("repro bundles:")
		for _, b := range bundles {
			fmt.Println("  ", b)
		}
		return 1
	}
	return 0
}

// replayBundle loads a repro bundle and re-runs its trial with the
// captured schedule log driving the scheduler. Exit 0 iff the recorded
// failure class reproduces.
func replayBundle(path string, verbose bool) int {
	m, log, err := replay.LoadBundle(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowa-torture:", err)
		return 2
	}
	fmt.Printf("replaying %s: %s\n", path, trialLabel(m))
	if m.Failure != "" {
		fmt.Printf("  captured failure: %s\n", m.Failure)
	}
	if verbose && log.Workers() > 0 {
		evs := log.PerWorker[0]
		n := 16
		if len(evs) < n {
			n = len(evs)
		}
		fmt.Printf("  worker 0 schedule tail: %s\n", replay.FormatEvents(evs[len(evs)-n:]))
	}
	f := runTrial(m, nil, log)
	switch {
	case f == "" && m.Failure == "":
		fmt.Println("replay passed (bundle recorded no failure)")
		return 0
	case failureClass(f) == failureClass(m.Failure):
		fmt.Printf("reproduced: %s\n", f)
		return 0
	default:
		fmt.Printf("NOT reproduced: replay gave %q, bundle recorded %q\n", f, m.Failure)
		return 1
	}
}

// selfTest validates the whole pipeline against the planted
// Chaos.LeakVessel bug: the trial must fail, the capture must replay to
// the same failure, and the shrinker must keep a failing configuration.
func selfTest(out string, ringCap int) int {
	// StealInterest 1024 promotes every lazy spawn: without it a
	// single-worker trial runs everything inline under the default spawn
	// policy and never churns a vessel, so the planted leak cannot fire.
	m := replay.Meta{
		Tool: "nowa-torture", Kernel: "fib", Scale: "test", Variant: "nowa",
		Workers: 1, Seed: 7,
		Chaos: &replay.ChaosSpec{Seed: 11, LeakVessel: 24, StealInterest: 1024, DelaySpins: 1},
	}
	fmt.Printf("selftest trial: %s (planted leak-vessel bug armed)\n", trialLabel(m))
	f := runTrial(m, replay.NewRecorder(1, ringCap), nil)
	if failureClass(f) != "vessel-leak" {
		fmt.Printf("selftest FAILED: planted bug gave %q, want a vessel-leak\n", f)
		return 1
	}
	fmt.Printf("  trial fails as planted: %s\n", f)
	path, err := captureFailure(m, "vessel-leak", out, ringCap, "-selftest")
	if err != nil || path == "" {
		fmt.Printf("selftest FAILED: could not capture bundle (path=%q err=%v)\n", path, err)
		return 1
	}
	if rc := replayBundle(path, false); rc != 0 {
		fmt.Println("selftest FAILED: bundle did not replay to the captured failure")
		return 1
	}
	min := shrink(m, "vessel-leak", ringCap, true)
	if !reproduces(min, "vessel-leak", ringCap) {
		fmt.Println("selftest FAILED: shrunk trial no longer fails")
		return 1
	}
	if min.Chaos == nil || min.Chaos.LeakVessel == 0 {
		fmt.Println("selftest FAILED: shrinker dropped the injection that causes the failure")
		return 1
	}
	fmt.Printf("  shrunk to: %s (leak-vessel rate %d)\n", trialLabel(min), min.Chaos.LeakVessel)
	fmt.Println("selftest passed: capture, replay and shrink all work")
	return 0
}
