// Command nowa-serve is the service-mode load harness: it drives
// open-loop arrival-rate curves against each continuation-stealing
// variant's admission pipeline, locates the saturation knee, probes
// overload at twice the knee, and writes the whole sweep to a JSON
// report (BENCH_serve.json by default).
//
//	nowa-serve -variants nowa,fibril -policies failfast,shed -dur 1s
//
// The report records per point: offered vs admitted vs shed/rejected
// counts, retried sheds, goodput, and p50/p99/p999 latency of admitted
// work measured from the scheduled arrival time (coordinated-omission
// aware). Graceful degradation holds when the overload probe's p99
// stays within 3× of the uncontended baseline for FailFast/Shed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"nowa"
	"nowa/internal/loadgen"
	"nowa/internal/sched"
)

func main() {
	variantsFlag := flag.String("variants", "nowa,nowa-the,fibril,cilkplus",
		"comma-separated continuation-stealing variants to sweep")
	policiesFlag := flag.String("policies", "block,failfast,shed",
		"comma-separated overload policies to sweep")
	workers := flag.Int("workers", defaultWorkers(), "worker count per runtime")
	// The queue depth bounds worst-case queueing delay (≈ depth divided
	// by the service rate); the default is sized for the latency bar
	// rather than raw goodput.
	depth := flag.Int("depth", 32, "admission queue depth")
	dur := flag.Duration("dur", time.Second, "generation time per rate point")
	startRate := flag.Float64("start-rate", 500, "lowest offered rate (submissions/s)")
	points := flag.Int("points", 8, "max rate points per curve (each doubles the rate)")
	iters := flag.Int("iters", 2000, "spin iterations per strand of the fork/join task")
	submitters := flag.Int("submitters", 4, "producer goroutines")
	retry := flag.Bool("retry", true, "retry refused/shed submissions once, honouring the hint")
	faults := flag.Bool("faults", false,
		"append the fault campaign: injected worker stalls measured bare, with stall recovery, and with a hedging client")
	faultsOnly := flag.Bool("faults-only", false, "run only the fault campaign, skipping the rate sweep")
	stallFor := flag.Duration("stall-for", 20*time.Millisecond, "with -faults: injected stall length")
	stallEvery := flag.Int("stall-every", 300, "with -faults: one injected stall per N finish-window rolls")
	stallThreshold := flag.Duration("stall-threshold", time.Millisecond, "with -faults: stall-recovery seizure threshold")
	jsonPath := flag.String("json", "BENCH_serve.json", "report output path (empty to skip)")
	flag.Parse()
	if *faultsOnly {
		*faults = true
	}

	variants, err := parseVariants(*variantsFlag)
	if err != nil {
		fatal(err)
	}
	policies, err := parsePolicies(*policiesFlag)
	if err != nil {
		fatal(err)
	}

	rep := loadgen.Report{
		Workers:    *workers,
		Depth:      *depth,
		StartRate:  *startRate,
		PointDur:   dur.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	bad := 0
	if *faultsOnly {
		variants = nil
	}
	for _, v := range variants {
		for _, pol := range policies {
			fmt.Printf("%s / %s:\n", v, pol)
			curve, err := loadgen.Sweep(loadgen.SweepConfig{
				MkRuntime:  func() *sched.Runtime { return nowa.New(v, *workers).(*sched.Runtime) },
				Service:    sched.ServiceConfig{QueueDepth: *depth, Policy: pol},
				Variant:    v.String(),
				Workers:    *workers,
				StartRate:  *startRate,
				MaxPoints:  *points,
				PointDur:   *dur,
				Submitters: *submitters,
				Retry:      *retry,
				TaskIters:  *iters,
				Logf: func(format string, args ...any) {
					fmt.Printf(format+"\n", args...)
				},
			})
			if err != nil {
				fatal(err)
			}
			leaks, degraded := loadgen.CheckCurve(curve)
			for _, msg := range append(leaks, degraded...) {
				fmt.Fprintf(os.Stderr, "  FAIL %s\n", msg)
				bad++
			}
			rep.Curves = append(rep.Curves, curve)
		}
	}

	if *faults {
		fmt.Println("fault campaign:")
		frep := loadgen.FaultSweep(loadgen.FaultSweepConfig{
			Workers:        *workers,
			QueueDepth:     *depth,
			PointDur:       *dur,
			Submitters:     *submitters,
			StallEvery:     *stallEvery,
			StallFor:       *stallFor,
			StallThreshold: *stallThreshold,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		rep.Faults = &frep
		leaks, degraded := loadgen.CheckFaultReport(frep)
		for _, msg := range leaks {
			fmt.Fprintf(os.Stderr, "  FAIL %s\n", msg)
			bad++
		}
		for _, msg := range degraded {
			fmt.Fprintf(os.Stderr, "  FAIL %s\n", msg)
			bad++
		}
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d curves)\n", *jsonPath, len(rep.Curves))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "nowa-serve: %d degradation/leak check(s) failed\n", bad)
		os.Exit(1)
	}
}

func parseVariants(s string) ([]nowa.Variant, error) {
	byName := map[string]nowa.Variant{}
	for _, v := range nowa.Variants() {
		byName[v.String()] = v
	}
	var out []nowa.Variant
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		v, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown variant %q", name)
		}
		if !nowa.HasVesselModel(v) {
			return nil, fmt.Errorf("variant %q has no service mode (vessel model required)", name)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no variants selected")
	}
	return out, nil
}

func parsePolicies(s string) ([]sched.OverloadPolicy, error) {
	var out []sched.OverloadPolicy
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "":
		case "block":
			out = append(out, sched.OverloadBlock)
		case "failfast":
			out = append(out, sched.OverloadFailFast)
		case "shed":
			out = append(out, sched.OverloadShed)
		default:
			return nil, fmt.Errorf("unknown policy %q (want block, failfast, shed)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies selected")
	}
	return out, nil
}

func defaultWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 2 {
		w = 2
	}
	return w
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nowa-serve:", err)
	os.Exit(1)
}
