// Command nowa-trace records a scheduler event trace of one benchmark run
// on the Nowa runtime and writes it in the Chrome trace event format
// (load the output in chrome://tracing or https://ui.perfetto.dev) — a
// visual rendering of the paper's Figure 4 strand-to-worker mappings on a
// real execution.
package main

import (
	"flag"
	"fmt"
	"os"

	"nowa/internal/apps"
	"nowa/internal/sched"
	"nowa/internal/tracelog"
)

func main() {
	benchName := flag.String("bench", "fib", "benchmark to trace")
	workers := flag.Int("workers", 4, "worker count")
	out := flag.String("o", "trace.json", "output file")
	scaleFlag := flag.String("scale", "test", "input scale: test, bench or large")
	flag.Parse()

	var scale apps.Scale
	switch *scaleFlag {
	case "test":
		scale = apps.Test
	case "bench":
		scale = apps.Bench
	case "large":
		scale = apps.Large
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}
	b, err := apps.ByName(*benchName, scale)
	if err != nil {
		fatal(err)
	}

	log := sched.NewEventLog(*workers)
	rt := sched.MustNew(sched.Config{
		Name:    "nowa",
		Workers: *workers,
		Events:  log,
	})
	defer rt.Close()

	b.Prepare()
	rt.Run(b.Run)
	if err := b.Verify(); err != nil {
		fatal(err)
	}
	events := log.Drain()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tracelog.WriteChromeTrace(f, events); err != nil {
		fatal(err)
	}

	fmt.Printf("traced %s on %d workers: %d events -> %s\n\n", b.Name(), *workers, len(events), *out)
	fmt.Print(tracelog.FormatSummary(events))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nowa-trace:", err)
	os.Exit(1)
}
