// Command nowa-bench measures the real (host) runtimes: it runs the
// Table I benchmarks on the selected runtime variants following the
// paper's methodology (§V) — R+1 runs with the first as warm-up, speedups
// against the arithmetic mean of the serial-elision runs, geometric-mean
// speedups with standard deviations.
//
// On hosts with few cores the speedups are naturally small; the
// 256-thread figures come from nowa-sim instead. This harness validates
// that the relative ordering holds on real hardware and measures absolute
// per-spawn overheads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"nowa"
	"nowa/internal/apps"
	"nowa/internal/blockapps"
	"nowa/internal/loadgen"
	"nowa/internal/sched"
	"nowa/internal/stats"
)

func main() {
	benchFlag := flag.String("bench", "", "comma-separated benchmark names (default: all)")
	variantsFlag := flag.String("variants", "nowa,nowa-the,fibril,cilkplus,tbb,libgomp,libomp-untied,libomp-tied", "comma-separated runtime variants")
	workersFlag := flag.String("workers", "", "comma-separated worker counts (default: 1,2,4,NumCPU)")
	runs := flag.Int("runs", 5, "measured runs per configuration (one extra warm-up run)")
	scaleFlag := flag.String("scale", "bench", "input scale: test, bench or large")
	micro := flag.Bool("micro", false, "measure scheduler micro-overheads (spawn/sync ns and allocs per op) plus the fib/nqueens/quicksort kernels instead of the speedup tables")
	block := flag.Bool("block", false, "measure the blocking kernels (bounded-channel pipeline, channel-frontier BFS) with wait-protocol stats instead of the speedup tables; vessel-model variants only")
	serve := flag.Bool("serve", false, "run the service-mode arrival-rate sweep (admission/backpressure curves) instead of the speedup tables; writes BENCH_serve.json unless -json overrides")
	serveDur := flag.Duration("serve-dur", time.Second, "with -serve: generation time per rate point")
	jsonFlag := flag.String("json", "", "with -micro or -serve: also write the results as JSON to this path")
	gateFlag := flag.String("gate", "", "with -micro: baseline micro JSON report; exit nonzero if any vessel-model spawn median regresses more than 25% against it")
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	if *serve {
		variants, err := parseVariants(*variantsFlag)
		if err != nil {
			fatal(err)
		}
		out := *jsonFlag
		if out == "" {
			out = "BENCH_serve.json"
		}
		runServe(variants, *serveDur, out)
		return
	}
	if *micro {
		variants, err := parseVariants(*variantsFlag)
		if err != nil {
			fatal(err)
		}
		runMicro(variants, *runs, scale, *jsonFlag, *gateFlag)
		return
	}
	if *block {
		variants, err := parseVariants(*variantsFlag)
		if err != nil {
			fatal(err)
		}
		runBlock(variants, *runs, scale, *jsonFlag)
		return
	}
	if *jsonFlag != "" {
		fatal(fmt.Errorf("-json requires -micro, -serve or -block"))
	}
	if *gateFlag != "" {
		fatal(fmt.Errorf("-gate requires -micro"))
	}
	benches := apps.Names()
	if *benchFlag != "" {
		benches = strings.Split(*benchFlag, ",")
	}
	variants, err := parseVariants(*variantsFlag)
	if err != nil {
		fatal(err)
	}
	workers := defaultWorkers()
	if *workersFlag != "" {
		workers = nil
		for _, s := range strings.Split(*workersFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad -workers value %q", s))
			}
			workers = append(workers, n)
		}
	}

	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d | runs=%d(+1 warm-up) scale=%s\n\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), *runs, scale)

	for _, name := range benches {
		b, err := apps.ByName(strings.TrimSpace(name), scale)
		if err != nil {
			fatal(err)
		}
		serial := measure(b, nowa.Serial(), *runs)
		ts := stats.Mean(stats.DurationsToSeconds(serial))
		fmt.Printf("%s (Ts = %.4f ± %.4f s)\n", b.Name(),
			ts, stats.StdDev(stats.DurationsToSeconds(serial)))
		fmt.Printf("  %-14s", "variant")
		for _, w := range workers {
			fmt.Printf("  %12s", fmt.Sprintf("S(%d)", w))
		}
		fmt.Println()
		for _, v := range variants {
			fmt.Printf("  %-14s", v.String())
			for _, w := range workers {
				rt := nowa.New(v, w)
				times := measure(b, rt, *runs)
				nowa.Close(rt)
				sp, err := stats.Speedups(stats.DurationsToSeconds(serial), stats.DurationsToSeconds(times))
				if err != nil {
					fatal(err)
				}
				sum := stats.Summarize(sp)
				fmt.Printf("  %6.2f±%-5.2f", sum.GeoMean, sum.StdDev)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// measure runs b on rt runs+1 times (discarding the warm-up), verifying
// every run.
func measure(b apps.Benchmark, rt nowa.Runtime, runs int) []time.Duration {
	out := make([]time.Duration, 0, runs)
	for i := 0; i <= runs; i++ {
		b.Prepare()
		start := time.Now()
		rt.Run(b.Run)
		d := time.Since(start)
		if err := b.Verify(); err != nil {
			fatal(fmt.Errorf("%s on %s: %w", b.Name(), rt.Name(), err))
		}
		if i > 0 {
			out = append(out, d)
		}
	}
	return out
}

func parseScale(s string) (apps.Scale, error) {
	switch s {
	case "test":
		return apps.Test, nil
	case "bench":
		return apps.Bench, nil
	case "large":
		return apps.Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func parseVariants(s string) ([]nowa.Variant, error) {
	byName := map[string]nowa.Variant{}
	for _, v := range nowa.Variants() {
		byName[v.String()] = v
	}
	var out []nowa.Variant
	for _, part := range strings.Split(s, ",") {
		v, ok := byName[strings.TrimSpace(part)]
		if !ok {
			return nil, fmt.Errorf("unknown variant %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func defaultWorkers() []int {
	ws := []int{1, 2, 4}
	n := runtime.NumCPU()
	if n > 4 {
		ws = append(ws, n)
	}
	return ws
}

// --- Micro mode (-micro) -------------------------------------------------
//
// Micro mode measures the scheduler substrate itself rather than the
// paper's speedup tables: the single-worker Spawn/Sync round trip (the
// popBottom-hit fast path engineered in DESIGN.md §9), the no-steal
// explicit Sync, and the wall time of three Table I kernels per variant
// as an end-to-end cross-check. With -json the results are written as a
// machine-readable report (the committed BENCH_sched.json is one).

// microResult is one variant's substrate overhead measurements.
type microResult struct {
	Variant string `json:"variant"`
	// SpawnNsPerOp is the MEDIAN of the per-round samples below; the
	// rounds interleave all variants (A/B/A/B...) so slow drift on a
	// shared host biases every variant equally instead of whichever ran
	// last.
	SpawnNsPerOp   float64   `json:"spawn_ns_per_op"`
	SpawnNsSamples []float64 `json:"spawn_ns_samples"`
	SpawnBytes     int64     `json:"spawn_bytes_per_op"`
	SpawnAllocs    int64     `json:"spawn_allocs_per_op"`
	SyncNsPerOp    float64   `json:"sync_ns_per_op"`
	SyncAllocs     int64     `json:"sync_allocs_per_op"`
}

// resourceSample is the subset of nowa.ResourceStats worth archiving per
// benchmark run: pool size, degradation tallies and trim counts. Nil for
// runtimes without a vessel model.
type resourceSample struct {
	VesselsLive     int64 `json:"vessels_live"`
	VesselHighWater int64 `json:"vessel_high_water"`
	VesselsTrimmed  int64 `json:"vessels_trimmed"`
	StacksLive      int64 `json:"stacks_live"`
	StacksTrimmed   int64 `json:"stacks_trimmed"`
	DegradedSpawns  int64 `json:"degraded_spawns"`
	TokenKeepSyncs  int64 `json:"token_keep_syncs"`
}

// sampleResources snapshots a runtime's resource accounting, or nil if
// the runtime does not report any.
func sampleResources(rt nowa.Runtime) *resourceSample {
	rs, ok := nowa.Resources(rt)
	if !ok {
		return nil
	}
	return &resourceSample{
		VesselsLive:     rs.VesselsLive,
		VesselHighWater: rs.VesselHighWater,
		VesselsTrimmed:  rs.VesselsTrimmed,
		StacksLive:      rs.StacksLive,
		StacksTrimmed:   rs.StacksTrimmed,
		DegradedSpawns:  rs.DegradedSpawns,
		TokenKeepSyncs:  rs.TokenKeepSyncs,
	}
}

// kernelResult is one kernel's wall time on one variant.
type kernelResult struct {
	Benchmark string          `json:"benchmark"`
	Variant   string          `json:"variant"`
	Workers   int             `json:"workers"`
	MeanSec   float64         `json:"mean_s"`
	StdSec    float64         `json:"std_s"`
	Resources *resourceSample `json:"resources,omitempty"`
}

// overloadResult is one variant's behaviour under a deliberately tight
// vessel budget (MaxVessels = workers+2): the kernel must still produce
// correct results while the high water stays at or below the budget and
// the overflow runs inline.
type overloadResult struct {
	Variant    string         `json:"variant"`
	Workers    int            `json:"workers"`
	MaxVessels int            `json:"max_vessels"`
	MeanSec    float64        `json:"mean_s"`
	Resources  resourceSample `json:"resources"`
}

// replayOverheadResult is one variant's schedule-recording cost: the
// single-worker Spawn/Sync round trip with the internal/replay recorder
// attached versus detached. The delta is the per-decision logging cost
// (a few packed atomic stores per spawn round trip).
type replayOverheadResult struct {
	Variant        string  `json:"variant"`
	SpawnOffNsOp   float64 `json:"spawn_ns_per_op_record_off"`
	SpawnOnNsOp    float64 `json:"spawn_ns_per_op_record_on"`
	OverheadNsOp   float64 `json:"record_overhead_ns_per_op"`
	SpawnAllocsOn  int64   `json:"spawn_allocs_per_op_record_on"`
	SpawnAllocsOff int64   `json:"spawn_allocs_per_op_record_off"`
}

// microReport is the -json document.
type microReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Scale       string `json:"kernel_scale"`
	Runs        int    `json:"kernel_runs"`
	// GoschedFloorNsPerOp is the median cost of a bare two-goroutine
	// ping-pong round on this host — the two scheduler switches an eager
	// vessel handoff pays. It is re-measured once per sampling round
	// (the per-round values are in the samples array), so every archived
	// report carries its own floor instead of citing a stale constant.
	GoschedFloorNsPerOp float64                `json:"gosched_floor_ns_per_op"`
	GoschedFloorSamples []float64              `json:"gosched_floor_ns_samples"`
	Notes               []string               `json:"notes"`
	Micro               []microResult          `json:"micro"`
	Kernels             []kernelResult         `json:"kernels"`
	Overload            []overloadResult       `json:"overload,omitempty"`
	ReplayOverhead      []replayOverheadResult `json:"replay_overhead,omitempty"`
}

// microNotes documents the methodology and the pre-change reference
// numbers the fast-path work is measured against (see DESIGN.md §9).
var microNotes = []string{
	"spawn_ns_per_op is one Spawn+Sync round trip on one worker and is the MEDIAN of kernel_runs interleaved rounds (A/B/A/B across variants); the per-round samples are archived next to it.",
	"gosched_floor_ns_per_op is the measured cost of a bare two-goroutine ping-pong round on this host: the two scheduler switches of the eager vessel handoff. Under lazy vessel promotion (the default) the no-steal spawn path switches no goroutines at all, so it is expected to land UNDER this floor; the eager comparators cannot.",
	"Pre-promotion reference on the reference host (1-CPU VM): nowa spawn ~353 ns/op median against a ~288 ns/round Gosched floor, 0 B/op. Pre-fast-path-work: 768 ns/op first recorded, ~558 ns/op interleaved median, 48 B/op and 1 alloc/op.",
	"Single-run samples on a shared 1-CPU VM are +/-15% noisy; compare medians of repeated runs, not single numbers.",
}

// goschedFloor measures one bare two-goroutine ping-pong round: a
// handoff to a partner goroutine and back, i.e. the two scheduler
// switches an eager vessel handoff pays per spawn. Archived with every
// report so spawn numbers are always read against the floor measured on
// the same host at the same moment.
func goschedFloor() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		ping, pong := make(chan struct{}), make(chan struct{})
		go func() {
			for range ping {
				pong <- struct{}{}
			}
		}()
		defer close(ping)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ping <- struct{}{}
			<-pong
		}
	})
}

// microSpawn measures one Spawn/Sync round trip on one worker.
func microSpawn(v nowa.Variant) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		rt := nowa.New(v, 1)
		defer nowa.Close(rt)
		b.ReportAllocs()
		b.ResetTimer()
		rt.Run(func(c nowa.Ctx) {
			for i := 0; i < b.N; i++ {
				s := c.Scope()
				s.Spawn(func(nowa.Ctx) {})
				s.Sync()
			}
		})
	})
}

// microSync measures an explicit Sync with no outstanding children.
func microSync(v nowa.Variant) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		rt := nowa.New(v, 1)
		defer nowa.Close(rt)
		b.ReportAllocs()
		b.ResetTimer()
		rt.Run(func(c nowa.Ctx) {
			s := c.Scope()
			for i := 0; i < b.N; i++ {
				s.Sync()
			}
		})
	})
}

// microSpawnRecording is microSpawn with a schedule recorder attached:
// the same round trip, now logging popBottom outcomes into the replay
// ring on every iteration.
func microSpawnRecording(v nowa.Variant) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		rec := nowa.NewScheduleRecorder(1, 1<<12)
		rt := nowa.NewInstrumented(v, 1, nowa.Instrument{Record: rec})
		defer nowa.Close(rt)
		b.ReportAllocs()
		b.ResetTimer()
		rt.Run(func(c nowa.Ctx) {
			for i := 0; i < b.N; i++ {
				s := c.Scope()
				s.Spawn(func(nowa.Ctx) {})
				s.Sync()
			}
		})
	})
}

// runServe is the -serve mode: the service-mode admission/backpressure
// sweep, shared with cmd/nowa-serve (which exposes more knobs). Only
// the vessel-model variants can serve; comparators are skipped.
func runServe(variants []nowa.Variant, pointDur time.Duration, jsonPath string) {
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 2 {
		workers = 2
	}
	const depth = 32
	rep := loadgen.Report{
		Workers:    workers,
		Depth:      depth,
		StartRate:  500,
		PointDur:   pointDur.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	bad := 0
	for _, v := range variants {
		if !nowa.HasVesselModel(v) {
			fmt.Printf("%s: no service mode (vessel model required), skipped\n", v)
			continue
		}
		for _, pol := range []sched.OverloadPolicy{sched.OverloadFailFast, sched.OverloadShed} {
			fmt.Printf("%s / %s:\n", v, pol)
			curve, err := loadgen.Sweep(loadgen.SweepConfig{
				MkRuntime: func() *sched.Runtime { return nowa.New(v, workers).(*sched.Runtime) },
				Service:   sched.ServiceConfig{QueueDepth: depth, Policy: pol},
				Variant:   v.String(),
				Workers:   workers,
				StartRate: rep.StartRate,
				PointDur:  pointDur,
				Retry:     true,
				Logf: func(format string, args ...any) {
					fmt.Printf(format+"\n", args...)
				},
			})
			if err != nil {
				fatal(err)
			}
			leaks, degraded := loadgen.CheckCurve(curve)
			for _, msg := range leaks {
				fmt.Fprintf(os.Stderr, "  FAIL %s\n", msg)
				bad++
			}
			// Degradation on the comparator variants is reported, not
			// fatal: locked-join variants can starve the dispatcher
			// continuation under sustained overload (see DESIGN.md §13);
			// the hard latency gate lives in cmd/nowa-serve.
			for _, msg := range degraded {
				fmt.Fprintf(os.Stderr, "  WARN %s\n", msg)
			}
			rep.Curves = append(rep.Curves, curve)
		}
	}

	// The fault campaign: injected worker stalls measured bare, with
	// stall recovery armed, and with a hedging client — the resilience
	// counterpart of the overload curves above. Leaks are fatal; the
	// throughput-recovery ratio is reported (the hard gate lives in
	// cmd/nowa-serve -faults, like the latency gate).
	fmt.Println("fault campaign:")
	frep := loadgen.FaultSweep(loadgen.FaultSweepConfig{
		Workers:  workers,
		PointDur: pointDur,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	rep.Faults = &frep
	leaks, degraded := loadgen.CheckFaultReport(frep)
	for _, msg := range leaks {
		fmt.Fprintf(os.Stderr, "  FAIL %s\n", msg)
		bad++
	}
	for _, msg := range degraded {
		fmt.Fprintf(os.Stderr, "  WARN %s\n", msg)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d curves)\n", jsonPath, len(rep.Curves))
	if bad > 0 {
		fatal(fmt.Errorf("%d degradation/leak check(s) failed", bad))
	}
}

// microKernels are the end-to-end cross-check workloads.
var microKernels = []string{"fib", "nqueens", "quicksort"}

// gateTolerance is the regression budget for -gate: single-run spawn
// samples on a shared host are +/-15% noisy, so the gate compares
// medians and allows 25% before failing — wide enough that noise never
// trips it, tight enough that a reintroduced goroutine switch (a 4-6x
// regression on the lazy path) always does.
const gateTolerance = 1.25

// loadGateBaseline reads a previously archived -micro report and
// returns its per-variant spawn medians. A missing file skips the gate
// with a warning (first run on a fresh branch); a corrupt file is fatal
// (the gate must never pass by accident).
func loadGateBaseline(path string) map[string]float64 {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "gate: baseline %s not found; regression gate skipped\n", path)
			return nil
		}
		fatal(err)
	}
	var base microReport
	if err := json.Unmarshal(buf, &base); err != nil {
		fatal(fmt.Errorf("gate: baseline %s is not a -micro report: %w", path, err))
	}
	medians := make(map[string]float64, len(base.Micro))
	for _, m := range base.Micro {
		medians[m.Variant] = m.SpawnNsPerOp
	}
	return medians
}

// checkGate compares the fresh vessel-model spawn medians against the
// baseline and returns one message per regression beyond gateTolerance.
// Comparator variants (goroutine-based spawn paths) are informational
// only; the floor guarantee the gate protects is the vessel model's.
func checkGate(baseline map[string]float64, fresh []microResult) []string {
	byName := map[string]nowa.Variant{}
	for _, v := range nowa.Variants() {
		byName[v.String()] = v
	}
	var bad []string
	for _, m := range fresh {
		v, ok := byName[m.Variant]
		if !ok || !nowa.HasVesselModel(v) {
			continue
		}
		old, ok := baseline[m.Variant]
		if !ok || old <= 0 {
			continue
		}
		if m.SpawnNsPerOp > old*gateTolerance {
			bad = append(bad, fmt.Sprintf(
				"%s: spawn median %.1f ns/op vs baseline %.1f ns/op (+%.0f%%, budget +%.0f%%)",
				m.Variant, m.SpawnNsPerOp, old,
				(m.SpawnNsPerOp/old-1)*100, (gateTolerance-1)*100))
		}
	}
	return bad
}

func runMicro(variants []nowa.Variant, runs int, scale apps.Scale, jsonPath, gatePath string) {
	// Read the baseline before any chance of overwriting it: -gate and
	// -json may (and in CI do) name the same committed file.
	var baseline map[string]float64
	if gatePath != "" {
		baseline = loadGateBaseline(gatePath)
	}
	rep := microReport{
		GeneratedBy: "cmd/nowa-bench -micro",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Scale:       scale.String(),
		Runs:        runs,
		Notes:       microNotes,
	}
	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d %s\n\n", rep.GOMAXPROCS, rep.NumCPU, rep.GoVersion)
	rounds := runs
	if rounds < 1 {
		rounds = 1
	}
	fmt.Printf("scheduler substrate (1 worker, median of %d interleaved rounds):\n", rounds)
	fmt.Printf("  %-14s %14s %10s %12s %14s\n", "variant", "spawn ns/op", "B/op", "allocs/op", "sync ns/op")
	// Interleave: every round measures the Gosched floor once, then every
	// variant once, so any drift on a shared host lands on all of them
	// equally and the medians stay comparable A-to-B.
	spawnSamples := make([][]float64, len(variants))
	syncSamples := make([][]float64, len(variants))
	last := make([]microResult, len(variants))
	for r := 0; r < rounds; r++ {
		fl := goschedFloor()
		rep.GoschedFloorSamples = append(rep.GoschedFloorSamples,
			float64(fl.T.Nanoseconds())/float64(fl.N))
		for i, v := range variants {
			sp := microSpawn(v)
			sy := microSync(v)
			spawnSamples[i] = append(spawnSamples[i], float64(sp.T.Nanoseconds())/float64(sp.N))
			syncSamples[i] = append(syncSamples[i], float64(sy.T.Nanoseconds())/float64(sy.N))
			last[i] = microResult{
				Variant:     v.String(),
				SpawnBytes:  sp.AllocedBytesPerOp(),
				SpawnAllocs: sp.AllocsPerOp(),
				SyncAllocs:  sy.AllocsPerOp(),
			}
		}
	}
	rep.GoschedFloorNsPerOp = stats.Median(rep.GoschedFloorSamples)
	for i := range variants {
		m := last[i]
		m.SpawnNsPerOp = stats.Median(spawnSamples[i])
		m.SpawnNsSamples = spawnSamples[i]
		m.SyncNsPerOp = stats.Median(syncSamples[i])
		rep.Micro = append(rep.Micro, m)
		fmt.Printf("  %-14s %14.1f %10d %12d %14.1f\n",
			m.Variant, m.SpawnNsPerOp, m.SpawnBytes, m.SpawnAllocs, m.SyncNsPerOp)
	}
	fmt.Printf("  %-14s %14.1f   (two-goroutine ping-pong round: the eager handoff's switch cost)\n",
		"gosched-floor", rep.GoschedFloorNsPerOp)
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("\nkernels (%s scale, %d workers, mean of %d runs):\n", rep.Scale, workers, runs)
	for _, name := range microKernels {
		b, err := apps.ByName(name, scale)
		if err != nil {
			fatal(err)
		}
		for _, v := range variants {
			rt := nowa.New(v, workers)
			times := stats.DurationsToSeconds(measure(b, rt, runs))
			k := kernelResult{
				Benchmark: name,
				Variant:   v.String(),
				Workers:   workers,
				MeanSec:   stats.Mean(times),
				StdSec:    stats.StdDev(times),
				Resources: sampleResources(rt),
			}
			nowa.Close(rt)
			rep.Kernels = append(rep.Kernels, k)
			if k.Resources != nil {
				fmt.Printf("  %-10s %-14s %10.4f ± %.4f s  vessels hw=%d degraded=%d\n",
					name, k.Variant, k.MeanSec, k.StdSec,
					k.Resources.VesselHighWater, k.Resources.DegradedSpawns)
			} else {
				fmt.Printf("  %-10s %-14s %10.4f ± %.4f s\n", name, k.Variant, k.MeanSec, k.StdSec)
			}
		}
	}
	runOverload(&rep, variants, runs, scale, workers)
	runReplayOverhead(&rep, variants)
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	// Gate last, after the fresh report is written: a failing run still
	// leaves the new numbers on disk for the CI artifact upload.
	if regressions := checkGate(baseline, rep.Micro); len(regressions) > 0 {
		for _, msg := range regressions {
			fmt.Fprintf(os.Stderr, "GATE FAIL %s\n", msg)
		}
		fatal(fmt.Errorf("%d spawn-median regression(s) beyond the %.0f%% gate", len(regressions), (gateTolerance-1)*100))
	}
}

// --- Blocking mode (-block) ----------------------------------------------
//
// Blocking mode measures the external-wait layer end to end: the
// bounded-channel pipeline (steady blocking churn) and the
// channel-frontier BFS (bursty work-queue blocking) per vessel-model
// variant, with the wait-protocol counters sampled after the runs. The
// kernels require eager spawns (a parked stage's unblocker is a
// later-spawned sibling) and the sched blocking layer, so serial elision
// and the goroutine comparators are out of scope here by construction.

// blockResult is one blocking kernel's wall time and cumulative wait
// accounting on one variant.
type blockResult struct {
	Benchmark        string  `json:"benchmark"`
	Variant          string  `json:"variant"`
	Workers          int     `json:"workers"`
	MeanSec          float64 `json:"mean_s"`
	StdSec           float64 `json:"std_s"`
	BlockedWaits     int64   `json:"blocked_waits"`
	ResumedWaits     int64   `json:"resumed_waits"`
	AbortedWaits     int64   `json:"aborted_waits"`
	WakeupsLost      int64   `json:"wakeups_lost"`
	BlockedHighWater int64   `json:"blocked_high_water"`
}

// blockReport is the -block -json document.
type blockReport struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	NumCPU      int           `json:"num_cpu"`
	Scale       string        `json:"kernel_scale"`
	Runs        int           `json:"kernel_runs"`
	Kernels     []blockResult `json:"kernels"`
}

func runBlock(variants []nowa.Variant, runs int, scale apps.Scale, jsonPath string) {
	workers := runtime.GOMAXPROCS(0)
	rep := blockReport{
		GeneratedBy: "cmd/nowa-bench -block",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  workers,
		NumCPU:      runtime.NumCPU(),
		Scale:       scale.String(),
		Runs:        runs,
	}
	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d %s\n", rep.GOMAXPROCS, rep.NumCPU, rep.GoVersion)
	fmt.Printf("blocking kernels (%s scale, %d workers, eager spawns, mean of %d runs):\n", rep.Scale, workers, runs)
	for _, name := range blockapps.BlockingNames() {
		b, err := blockapps.ByName(name, scale)
		if err != nil {
			fatal(err)
		}
		for _, v := range variants {
			if !nowa.HasVesselModel(v) {
				continue
			}
			rt := nowa.NewLimited(v, workers, nowa.Limits{Spawn: nowa.SpawnEager})
			times := stats.DurationsToSeconds(measure(b, rt, runs))
			rs, ok := nowa.Resources(rt)
			nowa.Close(rt)
			if !ok {
				fatal(fmt.Errorf("%s runtime reports no resources", v))
			}
			if rs.BlockedWaits != rs.ResumedWaits+rs.AbortedWaits {
				fatal(fmt.Errorf("%s on %s: wait conservation violated: blocked=%d resumed=%d aborted=%d",
					name, v, rs.BlockedWaits, rs.ResumedWaits, rs.AbortedWaits))
			}
			r := blockResult{
				Benchmark:        name,
				Variant:          v.String(),
				Workers:          workers,
				MeanSec:          stats.Mean(times),
				StdSec:           stats.StdDev(times),
				BlockedWaits:     rs.BlockedWaits,
				ResumedWaits:     rs.ResumedWaits,
				AbortedWaits:     rs.AbortedWaits,
				WakeupsLost:      rs.WakeupsLost,
				BlockedHighWater: rs.BlockedHighWater,
			}
			rep.Kernels = append(rep.Kernels, r)
			fmt.Printf("  %-10s %-14s %10.4f ± %.4f s  blocked=%d resumed=%d aborted=%d lost-parks=%d hw=%d\n",
				name, r.Variant, r.MeanSec, r.StdSec,
				r.BlockedWaits, r.ResumedWaits, r.AbortedWaits, r.WakeupsLost, r.BlockedHighWater)
		}
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// runOverload runs fib once per vessel-model variant under a tight
// vessel budget (MaxVessels = workers+2) and records the degradation
// tallies: the archived report then documents what graceful overload
// looks like on this host — high water pinned at the budget, the
// overflow spawns inlined, results still verified by measure.
func runOverload(rep *microReport, variants []nowa.Variant, runs int, scale apps.Scale, workers int) {
	b, err := apps.ByName("fib", scale)
	if err != nil {
		fatal(err)
	}
	maxVessels := workers + 2
	var header bool
	for _, v := range variants {
		if !nowa.HasVesselModel(v) {
			continue
		}
		if !header {
			fmt.Printf("\noverload probe (fib, MaxVessels=%d):\n", maxVessels)
			header = true
		}
		rt := nowa.NewLimited(v, workers, nowa.Limits{MaxVessels: maxVessels})
		times := stats.DurationsToSeconds(measure(b, rt, runs))
		sample := sampleResources(rt)
		nowa.Close(rt)
		if sample == nil {
			fatal(fmt.Errorf("limited %s runtime reports no resources", v))
		}
		o := overloadResult{
			Variant:    v.String(),
			Workers:    workers,
			MaxVessels: maxVessels,
			MeanSec:    stats.Mean(times),
			Resources:  *sample,
		}
		rep.Overload = append(rep.Overload, o)
		fmt.Printf("  %-14s %10.4f s  hw=%d/%d degraded=%d keep-syncs=%d trimmed=%d\n",
			o.Variant, o.MeanSec, sample.VesselHighWater, maxVessels,
			sample.DegradedSpawns, sample.TokenKeepSyncs, sample.VesselsTrimmed)
	}
}

// runReplayOverhead measures the spawn fast path with the schedule
// recorder attached versus detached, per vessel-model variant: the
// archived delta documents what turning on capture costs (and that it
// stays allocation-free either way).
func runReplayOverhead(rep *microReport, variants []nowa.Variant) {
	var header bool
	for _, v := range variants {
		if !nowa.HasVesselModel(v) {
			continue
		}
		if !header {
			fmt.Printf("\nreplay recording overhead (1 worker):\n")
			fmt.Printf("  %-14s %16s %16s %12s\n", "variant", "off ns/op", "on ns/op", "delta ns")
			header = true
		}
		off := microSpawn(v)
		on := microSpawnRecording(v)
		r := replayOverheadResult{
			Variant:        v.String(),
			SpawnOffNsOp:   float64(off.T.Nanoseconds()) / float64(off.N),
			SpawnOnNsOp:    float64(on.T.Nanoseconds()) / float64(on.N),
			SpawnAllocsOn:  on.AllocsPerOp(),
			SpawnAllocsOff: off.AllocsPerOp(),
		}
		r.OverheadNsOp = r.SpawnOnNsOp - r.SpawnOffNsOp
		rep.ReplayOverhead = append(rep.ReplayOverhead, r)
		fmt.Printf("  %-14s %16.1f %16.1f %12.1f\n",
			r.Variant, r.SpawnOffNsOp, r.SpawnOnNsOp, r.OverheadNsOp)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nowa-bench:", err)
	os.Exit(1)
}
