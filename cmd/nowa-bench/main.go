// Command nowa-bench measures the real (host) runtimes: it runs the
// Table I benchmarks on the selected runtime variants following the
// paper's methodology (§V) — R+1 runs with the first as warm-up, speedups
// against the arithmetic mean of the serial-elision runs, geometric-mean
// speedups with standard deviations.
//
// On hosts with few cores the speedups are naturally small; the
// 256-thread figures come from nowa-sim instead. This harness validates
// that the relative ordering holds on real hardware and measures absolute
// per-spawn overheads.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nowa"
	"nowa/internal/apps"
	"nowa/internal/stats"
)

func main() {
	benchFlag := flag.String("bench", "", "comma-separated benchmark names (default: all)")
	variantsFlag := flag.String("variants", "nowa,nowa-the,fibril,cilkplus,tbb,libgomp,libomp-untied,libomp-tied", "comma-separated runtime variants")
	workersFlag := flag.String("workers", "", "comma-separated worker counts (default: 1,2,4,NumCPU)")
	runs := flag.Int("runs", 5, "measured runs per configuration (one extra warm-up run)")
	scaleFlag := flag.String("scale", "bench", "input scale: test, bench or large")
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	benches := apps.Names()
	if *benchFlag != "" {
		benches = strings.Split(*benchFlag, ",")
	}
	variants, err := parseVariants(*variantsFlag)
	if err != nil {
		fatal(err)
	}
	workers := defaultWorkers()
	if *workersFlag != "" {
		workers = nil
		for _, s := range strings.Split(*workersFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad -workers value %q", s))
			}
			workers = append(workers, n)
		}
	}

	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d | runs=%d(+1 warm-up) scale=%s\n\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), *runs, scale)

	for _, name := range benches {
		b, err := apps.ByName(strings.TrimSpace(name), scale)
		if err != nil {
			fatal(err)
		}
		serial := measure(b, nowa.Serial(), *runs)
		ts := stats.Mean(stats.DurationsToSeconds(serial))
		fmt.Printf("%s (Ts = %.4f ± %.4f s)\n", b.Name(),
			ts, stats.StdDev(stats.DurationsToSeconds(serial)))
		fmt.Printf("  %-14s", "variant")
		for _, w := range workers {
			fmt.Printf("  %12s", fmt.Sprintf("S(%d)", w))
		}
		fmt.Println()
		for _, v := range variants {
			fmt.Printf("  %-14s", v.String())
			for _, w := range workers {
				rt := nowa.New(v, w)
				times := measure(b, rt, *runs)
				nowa.Close(rt)
				sp, err := stats.Speedups(stats.DurationsToSeconds(serial), stats.DurationsToSeconds(times))
				if err != nil {
					fatal(err)
				}
				sum := stats.Summarize(sp)
				fmt.Printf("  %6.2f±%-5.2f", sum.GeoMean, sum.StdDev)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// measure runs b on rt runs+1 times (discarding the warm-up), verifying
// every run.
func measure(b apps.Benchmark, rt nowa.Runtime, runs int) []time.Duration {
	out := make([]time.Duration, 0, runs)
	for i := 0; i <= runs; i++ {
		b.Prepare()
		start := time.Now()
		rt.Run(b.Run)
		d := time.Since(start)
		if err := b.Verify(); err != nil {
			fatal(fmt.Errorf("%s on %s: %w", b.Name(), rt.Name(), err))
		}
		if i > 0 {
			out = append(out, d)
		}
	}
	return out
}

func parseScale(s string) (apps.Scale, error) {
	switch s {
	case "test":
		return apps.Test, nil
	case "bench":
		return apps.Bench, nil
	case "large":
		return apps.Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func parseVariants(s string) ([]nowa.Variant, error) {
	byName := map[string]nowa.Variant{}
	for _, v := range nowa.Variants() {
		byName[v.String()] = v
	}
	var out []nowa.Variant
	for _, part := range strings.Split(s, ",") {
		v, ok := byName[strings.TrimSpace(part)]
		if !ok {
			return nil, fmt.Errorf("unknown variant %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func defaultWorkers() []int {
	ws := []int{1, 2, 4}
	n := runtime.NumCPU()
	if n > 4 {
		ws = append(ws, n)
	}
	return ws
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nowa-bench:", err)
	os.Exit(1)
}
