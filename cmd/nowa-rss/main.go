// Command nowa-rss regenerates Table II: the maximum resident stack-pool
// size of the Nowa runtime with and without the madvise() page-release
// technique (§V-B), using the real runtime's accounting stack pool.
//
// The paper reports whole-process RSS, which is dominated by benchmark
// data (matrices, arrays) identical across both configurations; the delta
// column — the only one madvise can affect — is what this tool measures
// directly: the peak resident bytes of the cactus stack pool.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"nowa/internal/apps"
	"nowa/internal/cactus"
	"nowa/internal/sched"
)

func main() {
	workers := flag.Int("workers", 8, "worker count")
	stackKiB := flag.Int("stack-kib", 64, "stack arena size in KiB")
	scaleFlag := flag.String("scale", "test", "input scale: test, bench or large")
	flag.Parse()

	var scale apps.Scale
	switch *scaleFlag {
	case "test":
		scale = apps.Test
	case "bench":
		scale = apps.Bench
	case "large":
		scale = apps.Large
	default:
		fmt.Fprintf(os.Stderr, "nowa-rss: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	if *workers > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(*workers)
	}
	fmt.Printf("== Table II: peak resident stack-pool bytes (Nowa, %d workers, %d KiB stacks) ==\n",
		*workers, *stackKiB)
	fmt.Printf("%-10s  %14s  %14s  %10s\n", "benchmark", "madvise OFF", "madvise ON", "delta")
	for _, name := range apps.Names() {
		var peaks [2]int64
		var madvised [2]int64
		for i, madvise := range []bool{false, true} {
			// The peak is schedule-dependent; take the max over a few
			// runs as a stable upper bound.
			for rep := 0; rep < 3; rep++ {
				b, err := apps.ByName(name, scale)
				if err != nil {
					fmt.Fprintln(os.Stderr, "nowa-rss:", err)
					os.Exit(1)
				}
				rt := sched.MustNew(sched.Config{
					Name:    "nowa",
					Workers: *workers,
					Stacks:  cactus.Config{Madvise: madvise, StackBytes: *stackKiB << 10},
				})
				b.Prepare()
				rt.Run(b.Run)
				if err := b.Verify(); err != nil {
					fmt.Fprintln(os.Stderr, "nowa-rss:", err)
					os.Exit(1)
				}
				st := rt.StackStats()
				if st.PeakRSSBytes > peaks[i] {
					peaks[i] = st.PeakRSSBytes
				}
				madvised[i] += st.MadviseCalls
				rt.Close()
			}
		}
		fmt.Printf("%-10s  %12.1fKiB  %12.1fKiB  %8.1fKiB   (madvise calls: %d)\n",
			name, float64(peaks[0])/1024, float64(peaks[1])/1024,
			float64(peaks[1]-peaks[0])/1024, madvised[1])
	}
	fmt.Println("\nLower 'madvise ON' peaks reflect released suspended-stack pages;")
	fmt.Println("the paper's finding is that these savings are small while the")
	fmt.Println("performance cost (see nowa-bench / nowa-sim -fig 8) is large.")
}
