// Command nowa-model runs the explicit-state model checker over the three
// strand-coordination protocols of the paper and prints the verdicts —
// including the concrete §III-C counterexample for the naive protocol.
package main

import (
	"flag"
	"fmt"
	"os"

	"nowa/internal/model"
)

func main() {
	spawns := flag.Int("spawns", 2, "number of spawn statements in the modelled function (1-4 recommended)")
	flag.Parse()

	fmt.Printf("Exhaustive interleaving check of the worker/thief race (§III-C), %d spawn(s):\n\n", *spawns)
	exit := 0
	for _, p := range []model.Proto{model.ProtoNaive, model.ProtoLocked, model.ProtoWaitFree} {
		r := model.Check(model.Config{Spawns: *spawns, Proto: p})
		fmt.Printf("%-10s  %7d states, %5d maximal executions: ", p, r.States, r.Executions)
		switch {
		case r.Violation == nil && p == model.ProtoNaive:
			fmt.Println("UNEXPECTEDLY SAFE (the checker should find the race)")
			exit = 1
		case r.Violation == nil:
			fmt.Println("safe — every interleaving releases the sync point exactly once, after all children")
		case p == model.ProtoNaive:
			fmt.Printf("RACE FOUND (as the paper predicts)\n\n%s\n\n", r.Violation)
		default:
			fmt.Printf("UNEXPECTED VIOLATION\n\n%s\n\n", r.Violation)
			exit = 1
		}
	}
	fmt.Println("\nProtoNaive models separate queue/counter steps; ProtoLocked fuses them")
	fmt.Println("(Fibril's coupled locks, Listing 2); ProtoWaitFree keeps them separate")
	fmt.Println("but runs phase 1 on N_r' = I_max - omega (the Nowa transformation, §IV).")
	os.Exit(exit)
}
