// Command nowa-prof measures the §III-A DAG metrics (work, span,
// parallelism) of the Table I benchmarks on the real kernels, Cilkview-
// style, and prints Brent speedup bounds — the scalability ceiling each
// benchmark has regardless of runtime system. Compare the parallelism
// column with Figure 7: quicksort's and heat's plateaus are properties of
// the computations, not of the schedulers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nowa/internal/apps"
	"nowa/internal/dagprof"
)

func main() {
	scaleFlag := flag.String("scale", "bench", "input scale: test, bench or large")
	benchFlag := flag.String("bench", "", "comma-separated benchmark names (default: all)")
	flag.Parse()

	var scale apps.Scale
	switch *scaleFlag {
	case "test":
		scale = apps.Test
	case "bench":
		scale = apps.Bench
	case "large":
		scale = apps.Large
	default:
		fmt.Fprintf(os.Stderr, "nowa-prof: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	names := apps.Names()
	if *benchFlag != "" {
		names = strings.Split(*benchFlag, ",")
	}

	fmt.Printf("%-10s  %10s  %10s  %8s  %8s  %8s  %12s\n",
		"benchmark", "work T1", "span Tinf", "T1/Tinf", "bound64", "bound256", "spawns")
	for _, name := range names {
		b, err := apps.ByName(strings.TrimSpace(name), scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nowa-prof:", err)
			os.Exit(1)
		}
		b.Prepare()
		p := dagprof.Measure(b.Run)
		if err := b.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "nowa-prof:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s  %10v  %10v  %8.1f  %8.1f  %8.1f  %12d\n",
			b.Name(), p.Work.Round(10_000), p.Span.Round(10_000),
			p.Parallelism(), p.SpeedupBound(64), p.SpeedupBound(256), p.Spawns)
	}
}
