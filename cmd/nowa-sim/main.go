// Command nowa-sim regenerates the paper's figures and tables on the
// discrete-event simulator (the 256-hardware-thread substitute documented
// in DESIGN.md). Each figure prints as an aligned text table: one row per
// thread count, one column per runtime system, values are speedups over
// the serial elision — exactly what the paper plots.
//
// Usage:
//
//	nowa-sim -fig 7                 # all 12 benchmarks, 4 runtimes
//	nowa-sim -fig 7 -bench nqueens  # one benchmark (this is Figure 1)
//	nowa-sim -fig 8                 # madvise on/off vs Cilk Plus
//	nowa-sim -fig 9                 # CL vs THE queue
//	nowa-sim -fig 10                # OpenMP comparison (log-scale data)
//	nowa-sim -table 3               # execution times at 256 threads
//	nowa-sim -summary               # §V-A geometric-mean speedup ratios
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nowa/internal/sim"
	"nowa/internal/stats"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 1, 7, 8, 9 or 10")
	table := flag.Int("table", 0, "table to regenerate: 3")
	bench := flag.String("bench", "", "restrict to one benchmark")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default: figure-specific)")
	seeds := flag.Int("seeds", 3, "number of simulation seeds (mean ± stddev reported)")
	summary := flag.Bool("summary", false, "print the §V-A geometric-mean speedup ratios at 256 threads")
	format := flag.String("format", "table", "output format: table or csv")
	ablate := flag.String("ablate", "", "cost-model sensitivity sweep: lockhold, atomic, stealsetup, stackswitch, memchannels or retry")
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fatalf("unknown format %q", *format)
	}
	csvMode = *format == "csv"

	if *fig == 0 && *table == 0 && !*summary && *ablate == "" {
		flag.Usage()
		os.Exit(2)
	}

	threads := sim.DefaultThreads
	if *threadsFlag != "" {
		threads = nil
		for _, part := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatalf("bad -threads value %q", part)
			}
			threads = append(threads, n)
		}
	}

	switch *fig {
	case 0:
	case 1:
		runFigure("Figure 1 (nqueens, 4 runtimes)", []string{"nqueens"}, sim.Fig7Schemes(), threads, *seeds)
	case 7:
		runFigure("Figure 7 (speedup, 1-256 threads)", benchList(*bench, sim.WorkloadNames()), sim.Fig7Schemes(), threads, *seeds)
	case 8:
		fig8Benches := []string{"cholesky", "lu", "heat", "fib", "matmul", "nqueens", "integrate", "rectmul"}
		runFigure("Figure 8 (impact of madvise)", benchList(*bench, fig8Benches), sim.Fig8Schemes(), threads, *seeds)
	case 9:
		fig9Benches := []string{"cholesky", "fib", "nqueens", "matmul"}
		runFigure("Figure 9 (CL queue vs THE queue)", benchList(*bench, fig9Benches), sim.Fig9Schemes(), threads, *seeds)
	case 10:
		t10 := threads
		if *threadsFlag == "" {
			t10 = []int{1, 64, 128, 192, 256}
		}
		runFigure("Figure 10 (Nowa vs OpenMP)", benchList(*bench, sim.WorkloadNames()), sim.Fig10Schemes(), t10, *seeds)
	default:
		fatalf("unknown figure %d", *fig)
	}

	if *table == 3 {
		runTable3(benchList(*bench, sim.WorkloadNames()), *seeds)
	} else if *table != 0 {
		fatalf("unknown table %d (Table II is produced by nowa-rss on the real runtime)", *table)
	}

	if *summary {
		runSummary(*seeds)
	}

	if *ablate != "" {
		runAblation(sim.AblationParam(*ablate), *bench)
	}
}

// runAblation prints the cost-model sensitivity sweep: the Nowa/Fibril
// speedup ratio at 256 threads as one parameter scales 0.25x-4x.
func runAblation(param sim.AblationParam, bench string) {
	workload := "fib"
	if bench != "" {
		workload = bench
	}
	pts, err := sim.Ablate(workload, param, sim.Fibril(), sim.DefaultAblationFactors(), 256, 1)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("== Sensitivity of %s at 256 threads to %s ==\n", workload, param)
	fmt.Printf("%8s  %10s  %10s  %8s\n", "factor", "nowa", "fibril", "ratio")
	for _, p := range pts {
		fmt.Printf("%8.2f  %10.2f  %10.2f  %7.2fx\n", p.Factor, p.NowaSpeedup, p.OtherSpeedup, p.Ratio)
	}
}

// csvMode switches figure output to machine-readable CSV rows:
// figure,benchmark,scheme,threads,speedup,stddev.
var csvMode bool

func benchList(filter string, all []string) []string {
	if filter == "" {
		return all
	}
	for _, n := range all {
		if n == filter {
			return []string{n}
		}
	}
	fatalf("unknown benchmark %q (have %v)", filter, all)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nowa-sim: "+format+"\n", args...)
	os.Exit(2)
}

// meanSpeedup averages one configuration over the seeds.
func meanSpeedup(dag *sim.DAG, sch sim.Scheme, p, seeds int) (mean, sd float64) {
	xs := make([]float64, 0, seeds)
	for s := 0; s < seeds; s++ {
		xs = append(xs, sim.Run(dag, sch, p, sim.DefaultCosts(), uint64(s)*977+1).Speedup)
	}
	return stats.GeoMean(xs), stats.StdDev(xs)
}

func runFigure(title string, benches []string, schemes []sim.Scheme, threads []int, seeds int) {
	if csvMode {
		fmt.Println("figure,benchmark,scheme,threads,speedup,stddev")
	} else {
		fmt.Printf("== %s ==\n", title)
	}
	for _, name := range benches {
		dag, err := sim.Workload(name, sim.SimFull)
		if err != nil {
			fatalf("%v", err)
		}
		if !csvMode {
			fmt.Printf("\n%s (T1 = %.2f ms virtual, parallelism = %.0f, %d tasks)\n",
				name, float64(dag.T1)/1e6, dag.Parallelism(), dag.Tasks)
			fmt.Printf("%8s", "threads")
			for _, sch := range schemes {
				fmt.Printf("  %16s", sch.Name)
			}
			fmt.Println()
		}
		for _, p := range threads {
			if !csvMode {
				fmt.Printf("%8d", p)
			}
			for _, sch := range schemes {
				m, sd := meanSpeedup(dag, sch, p, seeds)
				if csvMode {
					fmt.Printf("%q,%s,%s,%d,%.4f,%.4f\n", title, name, sch.Name, p, m, sd)
				} else {
					fmt.Printf("  %10.2f±%-5.2f", m, sd)
				}
			}
			if !csvMode {
				fmt.Println()
			}
		}
	}
}

func runTable3(benches []string, seeds int) {
	fmt.Println("== Table III: virtual execution times at 256 threads (ms) ==")
	schemes := []sim.Scheme{sim.Nowa(), sim.LibOMPUntied(), sim.LibOMPTied()}
	fmt.Printf("%-10s", "benchmark")
	for _, sch := range schemes {
		fmt.Printf("  %14s", sch.Name)
	}
	fmt.Println()
	for _, name := range benches {
		dag, err := sim.Workload(name, sim.SimFull)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%-10s", name)
		for _, sch := range schemes {
			var tot float64
			for s := 0; s < seeds; s++ {
				tot += float64(sim.Run(dag, sch, 256, sim.DefaultCosts(), uint64(s)*977+1).Makespan)
			}
			fmt.Printf("  %14.3f", tot/float64(seeds)/1e6)
		}
		fmt.Println()
	}
}

// runSummary prints the §V-A aggregates: geometric means over benchmarks
// of the per-benchmark speedup ratio Nowa/X at 256 threads, with and
// without knapsack (the paper excludes it).
func runSummary(seeds int) {
	fmt.Println("== §V-A summary: geometric-mean speedup ratio of Nowa over X at 256 threads ==")
	others := []sim.Scheme{sim.Fibril(), sim.CilkPlus(), sim.TBB(), sim.LibGOMP(), sim.LibOMPUntied(), sim.LibOMPTied()}
	type row struct {
		name          string
		with, without float64
		minR, maxR    float64
	}
	var rows []row
	for _, other := range others {
		var ratios []float64
		var ratiosNoKnap []float64
		minR, maxR := 1e18, 0.0
		for _, name := range sim.WorkloadNames() {
			dag, err := sim.Workload(name, sim.SimFull)
			if err != nil {
				fatalf("%v", err)
			}
			sn, _ := meanSpeedup(dag, sim.Nowa(), 256, seeds)
			so, _ := meanSpeedup(dag, other, 256, seeds)
			r := sn / so
			ratios = append(ratios, r)
			if name != "knapsack" {
				ratiosNoKnap = append(ratiosNoKnap, r)
				if r < minR {
					minR = r
				}
				if r > maxR {
					maxR = r
				}
			}
		}
		rows = append(rows, row{other.Name, stats.GeoMean(ratios), stats.GeoMean(ratiosNoKnap), minR, maxR})
	}
	fmt.Printf("%-14s  %12s  %12s  %8s  %8s\n", "vs", "with knap.", "w/o knap.", "min", "max")
	for _, r := range rows {
		fmt.Printf("%-14s  %11.2fx  %11.2fx  %7.2fx  %7.2fx\n", r.name, r.with, r.without, r.minR, r.maxR)
	}
}
