// Command nowa-vet runs the repository's domain-specific static
// analyzers (internal/analysis) over the module: atomicmix, hotpath,
// padguard, joinenc, lockorder, fsm and replaycover. It exits non-zero
// when any invariant is violated, so `make verify` and CI treat findings
// like compile errors.
//
// Usage:
//
//	nowa-vet [-list] [-only name,name] [-json] [packages]
//
// Packages default to ./... . The patterns are handed to `go list
// -deps`, so they pick the roots; every module package in their import
// closure is loaded, type-checked in one universe and analyzed — the
// analyzers reason about cross-package facts (hot-path callees, atomic
// access sites, lock hierarchies, record/replay symmetry) and need the
// whole picture. Run with ./... in practice; narrower patterns analyze
// partial closures.
//
// -only selects a comma-separated subset of analyzers by name; empty
// segments (a trailing comma) are ignored, an unknown name or a
// selection that resolves to no analyzers at all is a usage error — a
// vet run that silently checks nothing must not pass.
//
// -json replaces the human format with one JSON object per finding
// (analyzer, file, line, col, message), one per line, followed by a
// summary object ({"findings": N, "analyzers": M}) — line-delimited
// JSON for CI annotation tooling. `make lint` keeps the human format.
//
// Exit codes:
//
//	0  no findings
//	1  one or more findings
//	2  usage error or package load/type-check failure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nowa/internal/analysis"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonSummary terminates the -json stream.
type jsonSummary struct {
	Findings  int `json:"findings"`
	Analyzers int `json:"analyzers"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	asJSON := flag.Bool("json", false, "emit findings as line-delimited JSON with a trailing summary object")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	available := func() string {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		return strings.Join(names, ", ")
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				keep[name] = true
			}
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "nowa-vet: unknown analyzer %q (available: %s)\n", name, available())
			os.Exit(2)
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "nowa-vet: -only %q selects no analyzers (available: %s)\n", *only, available())
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	m, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nowa-vet: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.RunAll(m, analyzers)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			enc.Encode(jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc.Encode(jsonSummary{Findings: len(findings), Analyzers: len(analyzers)})
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) == 0 {
		return
	}
	if !*asJSON {
		fmt.Fprintf(os.Stderr, "nowa-vet: %d finding(s)\n", len(findings))
	}
	os.Exit(1)
}
