// Command nowa-vet runs the repository's domain-specific static
// analyzers (internal/analysis) over the module: atomicmix, hotpath,
// padguard and joinenc. It exits non-zero when any invariant is
// violated, so `make verify` and CI treat findings like compile errors.
//
// Usage:
//
//	nowa-vet [-list] [-only name,name] [packages]
//
// Packages default to ./... . The patterns are handed to `go list
// -deps`, so they pick the roots; every module package in their import
// closure is loaded, type-checked in one universe and analyzed — the
// analyzers reason about cross-package facts (hot-path callees, atomic
// access sites, join encapsulation) and need the whole picture. Run with
// ./... in practice; narrower patterns analyze partial closures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nowa/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "nowa-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	m, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nowa-vet: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.RunAll(m, analyzers)
	if len(findings) == 0 {
		return
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	fmt.Fprintf(os.Stderr, "nowa-vet: %d finding(s)\n", len(findings))
	os.Exit(1)
}
