// Allocation regression tests for the scheduler fast path.
//
// The tentpole property of the fast-path engineering work (DESIGN.md §9)
// is that a steady-state Spawn/Sync round trip performs zero heap
// allocations: the continuation slot, the scope (with inline join
// storage for both protocols), the child's vessel and the park/resume
// rendezvous are all recycled per-worker state. These tests lock that
// property in with testing.AllocsPerRun so any future allocation on the
// hot path fails CI rather than silently costing a GC cycle per spawn.
package nowa_test

import (
	"testing"

	"nowa"
)

// allocVariants are the vessel-model runtimes whose fast path is subject
// to the zero-allocation guarantee. The wait-free and the lock-based
// protocols both store their join inline in the scope slot, so the bound
// is zero for all four; the child-stealing and OpenMP-like comparators
// allocate a task per spawn by design and are excluded.
var allocVariants = []struct {
	v     nowa.Variant
	bound float64 // max allocations per steady-state round trip
}{
	{nowa.VariantNowa, 0},
	{nowa.VariantNowaTHE, 0},
	{nowa.VariantFibril, 0},
	{nowa.VariantCilkPlus, 0},
}

// TestSpawnAllocs asserts the steady-state allocation bound of one
// Spawn/Sync round trip on a single worker (the popBottom-hit path).
// The warm-up loop populates the vessel free list, the scope ring and
// the deque ring so the measurement sees only the recycled state.
func TestSpawnAllocs(t *testing.T) {
	for _, tc := range allocVariants {
		tc := tc
		t.Run(tc.v.String(), func(t *testing.T) {
			rt := nowa.New(tc.v, 1)
			defer nowa.Close(rt)
			var avg float64
			rt.Run(func(c nowa.Ctx) {
				for i := 0; i < 64; i++ {
					s := c.Scope()
					s.Spawn(func(nowa.Ctx) {})
					s.Sync()
				}
				avg = testing.AllocsPerRun(100, func() {
					s := c.Scope()
					s.Spawn(func(nowa.Ctx) {})
					s.Sync()
				})
			})
			if avg > tc.bound {
				t.Errorf("%s: %.2f allocs per spawn/sync round trip, want <= %.0f",
					tc.v, avg, tc.bound)
			}
		})
	}
}

// TestSyncAllocs asserts that an explicit Sync on a scope with no stolen
// children allocates nothing — the no-steal sync is the paper's free
// case and must stay a handful of loads.
func TestSyncAllocs(t *testing.T) {
	for _, tc := range allocVariants {
		tc := tc
		t.Run(tc.v.String(), func(t *testing.T) {
			rt := nowa.New(tc.v, 1)
			defer nowa.Close(rt)
			var avg float64
			rt.Run(func(c nowa.Ctx) {
				s := c.Scope()
				s.Sync()
				avg = testing.AllocsPerRun(100, func() {
					s.Sync()
				})
			})
			if avg > tc.bound {
				t.Errorf("%s: %.2f allocs per empty Sync, want <= %.0f",
					tc.v, avg, tc.bound)
			}
		})
	}
}

// TestSpawnAllocsNested runs the measurement with a non-trivial serial
// spine: nested scopes exercise the ring beyond slot zero and the
// cascade in release, which must also be allocation-free.
func TestSpawnAllocsNested(t *testing.T) {
	rt := nowa.New(nowa.VariantNowa, 1)
	defer nowa.Close(rt)
	var avg float64
	round := func(c nowa.Ctx) {
		s1 := c.Scope()
		s1.Spawn(func(nowa.Ctx) {})
		s2 := c.Scope()
		s2.Spawn(func(nowa.Ctx) {})
		s2.Sync()
		s1.Sync()
	}
	rt.Run(func(c nowa.Ctx) {
		for i := 0; i < 64; i++ {
			round(c)
		}
		avg = testing.AllocsPerRun(100, func() { round(c) })
	})
	if avg > 0 {
		t.Errorf("nowa: %.2f allocs per nested round, want 0", avg)
	}
}
