package nowa

import "sort"

// Sort sorts data in parallel with the fork/join quicksort of the
// benchmark suite: spawn the left partition, recurse on the right, fall
// back to the standard library below the grain size. less must be a
// strict weak ordering. The sort is not stable.
func Sort[T any](c Ctx, data []T, less func(a, b T) bool) {
	const grain = 2048
	psort(c, data, less, grain)
}

// SortOrdered sorts a slice of an ordered type in parallel.
func SortOrdered[T ordered](c Ctx, data []T) {
	Sort(c, data, func(a, b T) bool { return a < b })
}

// ordered covers the built-in ordered types (the constraint of
// SortOrdered, stdlib-only so spelled out here).
type ordered interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64 | ~string
}

func psort[T any](c Ctx, data []T, less func(a, b T) bool, grain int) {
	// Under a cancelled run, leave the remaining subrange unsorted and
	// unwind; Sort's callers observe the cancellation via RunCtx's error.
	if c.Err() != nil {
		return
	}
	for len(data) > grain {
		p := partition(data, less)
		left := data[:p]
		data = data[p+1:]
		if len(left) == 0 {
			continue
		}
		s := c.Scope()
		s.Spawn(func(c Ctx) { psort(c, left, less, grain) })
		psort(c, data, less, grain)
		s.Sync()
		return
	}
	sort.Slice(data, func(i, j int) bool { return less(data[i], data[j]) })
}

// partition performs a median-of-three Hoare-style partition and returns
// the pivot's final index.
func partition[T any](data []T, less func(a, b T) bool) int {
	n := len(data)
	mid := n / 2
	if less(data[mid], data[0]) {
		data[0], data[mid] = data[mid], data[0]
	}
	if less(data[n-1], data[0]) {
		data[0], data[n-1] = data[n-1], data[0]
	}
	if less(data[n-1], data[mid]) {
		data[mid], data[n-1] = data[n-1], data[mid]
	}
	pivot := data[mid]
	data[mid], data[n-2] = data[n-2], data[mid]
	i := 0
	for j := 0; j < n-2; j++ {
		if less(data[j], pivot) {
			data[i], data[j] = data[j], data[i]
			i++
		}
	}
	data[i], data[n-2] = data[n-2], data[i]
	return i
}

// IsSorted reports whether data is sorted under less.
func IsSorted[T any](data []T, less func(a, b T) bool) bool {
	for i := 1; i < len(data); i++ {
		if less(data[i], data[i-1]) {
			return false
		}
	}
	return true
}
