package nowa

import (
	"runtime"
	"sync/atomic"

	"nowa/internal/cqs"
	"nowa/internal/sched"
)

// Barrier is a reusable rendezvous for a fixed party count: Wait blocks
// the calling strand (releasing its worker token) until parties strands
// have arrived, upon which the last arrival trips the barrier, wakes the
// others, and a fresh generation begins — the cyclic-barrier pattern,
// abort-safe. A blocked arrival cancelled by its context withdraws its
// arrival (so the remaining parties are not stranded one short forever)
// and returns the context's error; an abort that loses the race against
// the trip relays the wakeup it can no longer use to the next waiter, so
// no arrival is ever left asleep.
type Barrier struct {
	parties int
	gens    atomic.Uint64
	cur     atomic.Pointer[barrierGen]
}

// barrierGen is one generation's state: the arrival count and the waiter
// queue. Trip installs a fresh generation before draining the old one,
// so late arrivals and re-arrivals land on clean state.
type barrierGen struct {
	count atomic.Int64
	q     *cqs.Queue
}

// NewBarrier returns a barrier for the given party count (>= 1).
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("nowa: NewBarrier requires parties >= 1")
	}
	b := &Barrier{parties: parties}
	b.cur.Store(&barrierGen{q: cqs.NewQueue()})
	return b
}

// Parties returns the configured party count.
func (b *Barrier) Parties() int { return b.parties }

// Generation returns the number of completed trips — the current
// generation index.
func (b *Barrier) Generation() uint64 { return b.gens.Load() }

// Wait arrives at the barrier and blocks until the current generation
// trips. The last arrival trips it and returns without blocking. A
// cancelled arrival returns its context's error with its arrival
// withdrawn; when the cancellation loses the race against the trip the
// strand passes the barrier normally (nil).
func (b *Barrier) Wait(c Ctx) error {
	p := procOf(c)
	for {
		g := b.cur.Load()
		n := g.count.Load()
		if n >= int64(b.parties) {
			// The tripper is installing the next generation; step past.
			runtime.Gosched()
			continue
		}
		if !g.count.CompareAndSwap(n, n+1) {
			continue
		}
		if n+1 == int64(b.parties) {
			b.trip(p, g)
			return nil
		}
		rearrive, err := b.await(p, g)
		if err != nil {
			return err
		}
		if !rearrive {
			return nil
		}
		// Planted chaos abort withdrew the arrival: arrive again, on
		// whichever generation is current by now.
	}
}

// trip completes generation g: install the successor first (late
// arrivals land there), then resume the parties-1 other arrivals.
// Aborted cells are withdrawn arrivals — their replacements arrive
// later in the queue, which is what keeps the resume count honest — and
// an arrival that incremented but has not registered yet is paid with a
// deposit it consumes at registration.
func (b *Barrier) trip(p *sched.Proc, g *barrierGen) {
	b.cur.Store(&barrierGen{q: cqs.NewQueue()})
	b.gens.Add(1)
	for need := b.parties - 1; need > 0; {
		h, oc := g.q.Resume()
		switch oc {
		case cqs.Woke:
			p.ChaosWakeDelay()
			h.(*sched.Waiter).Wake()
			need--
		case cqs.Deposited:
			need--
		case cqs.Aborted:
			// Withdrawn arrival: skip without consuming a wakeup.
		}
	}
}

// await parks one non-final arrival. rearrive is true when a planted
// chaos abort withdrew the arrival and the caller must arrive again; err
// is the context's error when the wait was genuinely cancelled.
func (b *Barrier) await(p *sched.Proc, g *barrierGen) (rearrive bool, err error) {
	bw := p.PrepareWait()
	t, registered := g.q.Enqueue(bw)
	if !registered {
		// Eliminated: the trip's deposit beat the registration CAS.
		p.AbandonWait(bw)
		return false, nil
	}
	if p.ChaosAbortWait() && b.abortArrival(g, t) {
		p.AbandonWait(bw)
		return true, nil
	}
	return false, parkWait(p, bw, func() bool { return b.abortArrival(g, t) })
}

// abortArrival withdraws one arrival from generation g: decrement the
// count (so the barrier does not sit one short forever), then abort the
// waiter cell. It returns true only when the cell was won — the caller
// owns the cancellation. Two races lose:
//
//   - The generation already tripped (count reached parties before the
//     decrement landed): the arrival is committed, the trip's wakeup is
//     in flight, nothing to withdraw.
//   - The decrement landed but the trip claimed the cell first: the trip
//     spent one of its parties-1 wakeups on an arrival that no longer
//     counts, leaving one genuine waiter short — so the loser relays the
//     stolen wakeup to the next live waiter before reporting failure.
//     (This is how parties+1 strands can pass one trip when an abort
//     races it: the aborter is resumed anyway, and every real arrival
//     still gets its wakeup.)
func (b *Barrier) abortArrival(g *barrierGen, t cqs.Ticket) bool {
	for {
		n := g.count.Load()
		if n >= int64(b.parties) {
			return false
		}
		if g.count.CompareAndSwap(n, n-1) {
			break
		}
	}
	if t.TryAbort() {
		return true
	}
	// Relay: hand the trip's wakeup we consumed to the next live waiter.
	for {
		h, oc := g.q.Resume()
		switch oc {
		case cqs.Woke:
			h.(*sched.Waiter).Wake()
			return false
		case cqs.Deposited:
			return false
		case cqs.Aborted:
			// Another withdrawn arrival; keep relaying.
		}
	}
}
